package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/qerr"
	"repro/internal/strategies"
)

// chaosEnv builds a fresh dataset + strategy context for fault testing.
// Each matrix cell gets its own fixture because injectors are stateful and
// the DB-side injector hangs off the shared database handle.
func chaosEnv(t *testing.T) (*strategies.Context, *iotdata.Dataset) {
	t.Helper()
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	env := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := env.BindDefaults(repo, 20); err != nil {
		t.Fatal(err)
	}
	return env, ds
}

// TestChaosFaultMatrix is the chaos differential suite: every fault class
// crossed with every strategy. The contract under injection is
// result-or-typed-error — a run must either produce exactly the no-fault
// baseline result or fail with a qerr lifecycle error. Wrong results,
// panics, and deadlocks (enforced by the test binary's timeout) are all
// failures. Fault classes that only perturb timing (slow morsels) or that
// a strategy never crosses (serving faults under DL2SQL) must leave the
// result identical to the baseline.
func TestChaosFaultMatrix(t *testing.T) {
	env, ds := chaosEnv(t)
	// Keep retries fast and make hangs interruptible: a hung serving call
	// is cut off by the per-attempt timeout, not by the 1h hang default.
	// The timeout is generous because healthy serving takes tens of
	// milliseconds under -race; a hung attempt still resolves in ~2s.
	env.Retry = strategies.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		MaxDelay: 4 * time.Millisecond, AttemptTimeout: 2 * time.Second, JitterSeed: 3}

	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	// No-fault baselines per strategy (the strategies already agree with
	// each other per the differential harness; computing one baseline per
	// strategy keeps this test independent of that property).
	baseline := map[string]string{}
	for _, s := range strategies.All() {
		res, _, err := s.Execute(context.Background(), env, q)
		if err != nil {
			t.Fatalf("baseline %s: %v", s.Name(), err)
		}
		baseline[s.Name()] = diffCanonKey(res)
	}

	classes := []struct {
		name string
		spec string
	}{
		{"serving error", "serving.error:p=1"},
		{"serving error intermittent", "serving.error:every=2;seed=5"},
		{"serving hang", "serving.hang:p=1"},
		{"serving partial response", "serving.partial:p=1"},
		{"udf decode failure", "udf.decode:p=1"},
		{"dl2sql translate failure", "dl2sql.translate:p=1"},
		{"slow morsels", "morsel.delay:d=200us,every=7"},
		{"memory pressure", "mem.pressure:bytes=32768"},
		{"combined flaky", "serving.error:p=0.5;udf.decode:p=0.3;morsel.delay:d=100us,every=11;seed=9"},
	}

	for _, c := range classes {
		for _, s := range strategies.All() {
			inj, err := faults.Parse(c.spec)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			env.Faults = inj
			ds.DB.Faults = inj
			res, _, err := s.Execute(context.Background(), env, q)
			env.Faults = nil
			ds.DB.Faults = nil
			label := fmt.Sprintf("%s under %q", s.Name(), c.name)
			if err != nil {
				if !qerr.Lifecycle(err) {
					t.Errorf("%s: untyped error %v", label, err)
				}
				continue
			}
			if got := diffCanonKey(res); got != baseline[s.Name()] {
				t.Errorf("%s: wrong result under fault injection", label)
			}
		}
	}
}

// TestChaosFallbackLadderEndToEnd forces a dead serving pipe and checks
// that ExecuteWithFallback still answers the query correctly by degrading
// DB-PyTorch → DB-UDF, with the path visible in the breakdown and metrics.
func TestChaosFallbackLadderEndToEnd(t *testing.T) {
	env, ds := chaosEnv(t)
	env.Retry = strategies.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterSeed: 3}
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := (&strategies.DBUDF{}).Execute(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}

	env.Faults = faults.New(1, faults.Rule{Point: faults.PointServingError})
	ds.DB.Faults = env.Faults
	res, bd, err := strategies.ExecuteWithFallback(context.Background(), env, &strategies.DBPyTorch{}, q)
	if err != nil {
		t.Fatalf("fallback execution failed: %v", err)
	}
	if diffCanonKey(res) != diffCanonKey(want) {
		t.Fatal("fallback result differs from direct DB-UDF result")
	}
	if len(bd.FallbackPath) != 2 || bd.FallbackPath[0] != "DB-PyTorch" || bd.FallbackPath[1] != "DB-UDF" {
		t.Fatalf("FallbackPath = %v, want [DB-PyTorch DB-UDF]", bd.FallbackPath)
	}
}

// TestDeadlineFuzzSmoke sprays randomized tiny deadlines over the
// collaborative query template corpus at parallelism 2. Every run must end
// in a correct result or a typed lifecycle error within the deadline's
// order of magnitude, and the worker pool must not leak goroutines. This
// is the CI chaos job's smoke layer: it hunts deadline races at arbitrary
// points in the query lifecycle rather than at hand-picked ones.
func TestDeadlineFuzzSmoke(t *testing.T) {
	env, ds := chaosEnv(t)
	ds.DB.Parallelism = 2
	env.Retry = strategies.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterSeed: 3}
	rng := rand.New(rand.NewSource(11))
	types := []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4}

	before := runtime.NumGoroutine()
	runs := 24
	if testing.Short() {
		runs = 8
	}
	for i := 0; i < runs; i++ {
		typ := types[i%len(types)]
		q, err := colquery.GenerateAnalyzed(typ, colquery.TemplateParams{Selectivity: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		s := strategies.All()[rng.Intn(4)]
		// 50µs–51ms: from "expires before the first morsel" up to "expires
		// somewhere inside inference".
		d := time.Duration(50+rng.Intn(51000)) * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), d)
		res, _, err := s.Execute(ctx, env, q)
		cancel()
		if err == nil {
			if res == nil {
				t.Fatalf("run %d (%s, %v, d=%v): nil result without error", i, s.Name(), typ, d)
			}
			continue
		}
		if !qerr.Lifecycle(err) {
			t.Fatalf("run %d (%s, %v, d=%v): untyped error %v", i, s.Name(), typ, d, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after deadline fuzz: %d before, %d after", before, g)
	}
}
