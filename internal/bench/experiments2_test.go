package bench

import (
	"testing"
)

func TestTable5Shape(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.Table5Selectivity([]float64{0.02, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// OP inference must grow with selectivity (more predictions triggered).
	lo := cellF(t, tab, 0, 1)
	hi := cellF(t, tab, 1, 1)
	if hi < lo {
		t.Fatalf("OP inference should grow with selectivity: %v -> %v\n%s", lo, hi, tab.Render())
	}
}

func TestFig14Shape(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.Fig14Hints([]float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	// With very selective relational predicates, hints must win (speedup > 1).
	if sp := cellF(t, tab, 0, 3); sp <= 1 {
		t.Fatalf("hints should speed up selective queries, got %vx\n%s", sp, tab.Render())
	}
}

func TestTableITypes(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.TableITypes()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "Easy" || tab.Rows[3][1] != "Hard" {
		t.Fatalf("difficulties wrong:\n%s", tab.Render())
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("ResNet SQL inference is slow; run without -short")
	}
	s := smallSuite(t)
	tab, err := s.Table6Depth([]int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Parameters and DL2SQL loading must grow with depth.
	if cellF(t, tab, 1, 1) <= cellF(t, tab, 0, 1) {
		t.Fatalf("params must grow with depth:\n%s", tab.Render())
	}
	if cellF(t, tab, 1, 3) <= cellF(t, tab, 0, 3) {
		t.Fatalf("DL2SQL loading must grow with depth:\n%s", tab.Render())
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy x profile grid is slow; run without -short")
	}
	if raceEnabled {
		t.Skip("wall-clock shape comparison is skewed by race instrumentation")
	}
	s := smallSuite(t)
	tab, err := s.Fig8Overall()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 3 profiles x 4 strategies
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The paper's headline: on the edge device DL2SQL-OP performs best.
	totals := map[string]float64{}
	for i, row := range tab.Rows {
		if row[0] == "edge-cpu" {
			totals[row[1]] = cellF(t, tab, i, 5)
		}
	}
	for _, other := range []string{"DL2SQL", "DB-UDF", "DB-PyTorch"} {
		if totals["DL2SQL-OP"] > totals[other] {
			t.Fatalf("DL2SQL-OP (%.4f) must beat %s (%.4f) on edge:\n%s",
				totals["DL2SQL-OP"], other, totals[other], tab.Render())
		}
	}
	// server-gpu DB-PyTorch inference < server-cpu DB-PyTorch inference.
	var cpuInf, gpuInf float64
	for i, row := range tab.Rows {
		if row[0] == "server-cpu" && row[1] == "DB-PyTorch" {
			cpuInf = cellF(t, tab, i, 3)
		}
		if row[0] == "server-gpu" && row[1] == "DB-PyTorch" {
			gpuInf = cellF(t, tab, i, 3)
		}
	}
	if gpuInf >= cpuInf {
		t.Fatalf("GPU must cut DB-PyTorch inference: cpu=%v gpu=%v\n%s", cpuInf, gpuInf, tab.Render())
	}
}

func TestAblationBatching(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.AblationBatching()
	if err != nil {
		t.Fatal(err)
	}
	perStmts := cellF(t, tab, 0, 1)
	batStmts := cellF(t, tab, 1, 1)
	if batStmts*2 > perStmts {
		t.Fatalf("batching must amortize statements: %v vs %v\n%s", batStmts, perStmts, tab.Render())
	}
}

func TestAblationSymmetricJoin(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.AblationSymmetricJoin()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][1] != "HashJoin" || tab.Rows[1][1] != "SymmetricHashJoin" {
		t.Fatalf("plan operators wrong:\n%s", tab.Render())
	}
	if tab.Rows[0][3] != tab.Rows[1][3] {
		t.Fatalf("join variants must agree on row count:\n%s", tab.Render())
	}
}

func TestAblationPredicateOrdering(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.AblationPredicateOrdering()
	if err != nil {
		t.Fatal(err)
	}
	rankCalls := cellF(t, tab, 0, 1)
	forcedCalls := cellF(t, tab, 1, 1)
	if rankCalls >= forcedCalls {
		t.Fatalf("rank ordering must reduce UDF calls: %v vs %v\n%s", rankCalls, forcedCalls, tab.Render())
	}
}
