package bench

import (
	"fmt"
	"time"

	"repro/internal/colquery"
	"repro/internal/costmodel"
	"repro/internal/dl2sql"
	"repro/internal/modelrepo"
	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

// Table5Selectivity reproduces Table V: DL2SQL-OP cost vs. the accumulated
// relational selectivity, with the flat DB-UDF / DB-PyTorch totals
// alongside (the narrowing-gap observation).
func (s *Suite) Table5Selectivity(sels []float64) (*Table, error) {
	t := &Table{
		ID:      "Table V",
		Title:   "Performance vs. Relational Selectivity (Type 3 queries, edge)",
		Columns: []string{"Selectivity", "OP-Inference(s)", "OP-Loading(s)", "OP-All(s)", "DB-UDF All(s)", "DB-PyTorch All(s)"},
		Notes: []string{
			"shape check: DL2SQL-OP inference grows with selectivity; DB-UDF / DB-PyTorch stay nearly flat; the gap narrows as selectivity rises",
		},
	}
	op := &strategies.DL2SQL{Optimized: true}
	udf := &strategies.DBUDF{}
	pt := &strategies.DBPyTorch{}
	for _, sel := range sels {
		opBD, err := s.runType(op, colquery.Type3, s.Cfg.QueriesPerType, sel)
		if err != nil {
			return nil, err
		}
		udfBD, err := s.runType(udf, colquery.Type3, s.Cfg.QueriesPerType, sel)
		if err != nil {
			return nil, err
		}
		ptBD, err := s.runType(pt, colquery.Type3, s.Cfg.QueriesPerType, sel)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f%%", sel*100),
			f4(opBD.Inference), f4(opBD.Loading), f4(opBD.Total()),
			f4(udfBD.Total()), f4(ptBD.Total()))
	}
	return t, nil
}

// Table6Depth reproduces Table VI: parameters, inference and loading cost
// vs. ResNet depth for DL2SQL-OP, with DB-UDF / DB-PyTorch totals. The
// relational algebra cost is omitted, as in the paper (orders of magnitude
// below inference/loading for deep models).
func (s *Suite) Table6Depth(depths []int) (*Table, error) {
	t := &Table{
		ID:      "Table VI",
		Title:   "Performance vs. Model Depth (selectivity 0.1%-scaled, edge)",
		Columns: []string{"Depth", "Params", "OP-Inference(s)", "OP-Loading(s)", "DB-UDF All(s)", "DB-PyTorch All(s)"},
		Notes: []string{
			"shape check: params grow linearly; DL2SQL loading grows steeply with depth; DB-PyTorch overtakes DL2SQL for the deepest models",
		},
	}
	for _, depth := range depths {
		m, err := modelrepo.NewResNet(depth, modelrepo.TaskDefectDetection, s.Cfg.KeyframeSide, s.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		entry := &modelrepo.Entry{
			Name:  fmt.Sprintf("resnet%d", depth),
			Task:  modelrepo.TaskDefectDetection,
			Model: m,
		}
		if err := entry.Calibrate(s.Cfg.CalibrationSamples, s.Cfg.KeyframeSide, s.Cfg.Seed); err != nil {
			return nil, err
		}
		if err := s.Ctx.Bind("nudf_detect", entry, strategies.UDFBool); err != nil {
			return nil, err
		}
		if err := s.Ctx.HintProvider.RegisterModel("nudf_detect", entry); err != nil {
			return nil, err
		}
		op := &strategies.DL2SQL{Optimized: true}
		opBD, err := s.runType(op, colquery.Type3, 1, s.Cfg.Selectivity)
		if err != nil {
			return nil, err
		}
		udfBD, err := s.runType(&strategies.DBUDF{}, colquery.Type3, 1, s.Cfg.Selectivity)
		if err != nil {
			return nil, err
		}
		ptBD, err := s.runType(&strategies.DBPyTorch{}, colquery.Type3, 1, s.Cfg.Selectivity)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", depth), fmt.Sprintf("%d", m.ParamCount()),
			f4(opBD.Inference), f4(opBD.Loading), f4(udfBD.Total()), f4(ptBD.Total()))
	}
	// Restore the student binding for subsequent experiments.
	if err := s.Ctx.BindDefaults(s.Repo, s.Cfg.CalibrationSamples); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig12CostModel reproduces Fig. 12: the default DBMS estimate, the
// customized estimate, and the actual running time of Type-1-style conv
// queries, sweeping (a) kernel size and (b) input feature-map size. Costs
// are normalized to seconds with the measured ratio r.
func (s *Suite) Fig12CostModel() (*Table, error) {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	r, err := costmodel.NormalizationRatio(db)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig. 12",
		Title:   "Cost Model Estimations vs. Actual (normalized seconds, log-scale in the paper)",
		Columns: []string{"Sweep", "Value", "Default(s)", "Customized(s)", "Actual(s)"},
		Notes: []string{
			fmt.Sprintf("normalization ratio r = %.3e s/row", r),
			"shape check: customized tracks actual within ~an order of magnitude; default overshoots by many orders",
		},
	}
	measure := func(side, k int) (def, custom, actual float64, err error) {
		// Three stacked same-padded convolutions: the estimation error of
		// the default model compounds across layers, which is the paper's
		// observed pathology ("exaggerated exponentially after several
		// iterations" — single layers can even be under-estimated).
		pad := (k - 1) / 2
		m := nn.NewModel("sweep", []int{3, side, side}, nil)
		m.Add(
			nn.NewConv2D("c1", 3, 8, k, 1, pad, s.Cfg.Seed),
			nn.NewConv2D("c2", 8, 8, k, 1, pad, s.Cfg.Seed+1),
			nn.NewConv2D("c3", 8, 8, k, 1, pad, s.Cfg.Seed+2),
		)
		mc, err := costmodel.EstimateModel(m)
		if err != nil {
			return 0, 0, 0, err
		}
		dc, err := costmodel.DefaultEstimateModel(m)
		if err != nil {
			return 0, 0, 0, err
		}
		db := sqldb.New()
		db.Profile = sqldb.NewProfile()
		tr := dl2sql.NewTranslator(db, "fig12")
		sm, err := tr.StoreModel(m)
		if err != nil {
			return 0, 0, 0, err
		}
		start := time.Now()
		if _, _, err := tr.Infer(sm, randomInput(m.InputShape, s.Cfg.Seed)); err != nil {
			return 0, 0, 0, err
		}
		actual = time.Since(start).Seconds()
		return costmodel.ToSeconds(dc.Total, r), costmodel.ToSeconds(mc.Total, r), actual, nil
	}
	for _, k := range []int{3, 5, 7, 9} {
		def, custom, actual, err := measure(16, k)
		if err != nil {
			return nil, err
		}
		t.AddRow("kernel-size", fmt.Sprintf("%d", k), fe(def), fe(custom), fe(actual))
	}
	for _, side := range []int{8, 12, 16, 20} {
		def, custom, actual, err := measure(side, 3)
		if err != nil {
			return nil, err
		}
		t.AddRow("featuremap-size", fmt.Sprintf("%d", side), fe(def), fe(custom), fe(actual))
	}
	return t, nil
}

// Fig13PerOp reproduces Fig. 13: per-neural-operator estimation accuracy —
// customized estimate vs. actual SQL execution time for conv, BN, ReLU,
// pooling, and FC.
func (s *Suite) Fig13PerOp() (*Table, error) {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	r, err := costmodel.NormalizationRatio(db)
	if err != nil {
		return nil, err
	}
	side := 16
	model := nn.NewModel("ops", []int{3, side, side}, nil)
	model.Add(
		nn.NewConv2D("conv", 3, 8, 3, 1, 0, s.Cfg.Seed),
		nn.NewBatchNorm("bn", 8),
		&nn.ReLU{LayerName: "relu"},
		&nn.MaxPool{LayerName: "pool", K: 2, Stride: 2},
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 8, 4, s.Cfg.Seed+1),
	)
	mc, err := costmodel.EstimateModel(model)
	if err != nil {
		return nil, err
	}
	execDB := sqldb.New()
	execDB.Profile = sqldb.NewProfile()
	tr := dl2sql.NewTranslator(execDB, "fig13")
	sm, err := tr.StoreModel(model)
	if err != nil {
		return nil, err
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, _, err := tr.Infer(sm, randomInput(model.InputShape, s.Cfg.Seed+int64(i))); err != nil {
			return nil, err
		}
	}
	actualByLabel := map[string]float64{}
	for _, step := range tr.Steps {
		actualByLabel[step.Label] += step.Time.Seconds() / runs
	}
	t := &Table{
		ID:      "Fig. 13",
		Title:   "Per-Operator Cost Estimation (customized model vs. actual)",
		Columns: []string{"Operator", "Estimated(s)", "Actual(s)"},
		Notes: []string{
			"shape check: the customized estimates track the per-operator actuals' ordering (conv most expensive)",
		},
	}
	labelFor := map[string]string{
		"conv": "Conv1", "bn": "BN1", "relu": "ReLU1", "pool": "Pool", "gap": "Pool", "fc": "FC",
	}
	seenLabel := map[string]bool{}
	for _, lc := range mc.PerLayer {
		stepLabel, ok := labelFor[lc.Name]
		if !ok || seenLabel[stepLabel] {
			continue
		}
		seenLabel[stepLabel] = true
		t.AddRow(lc.Name, fe(costmodel.ToSeconds(lc.Cost, r)), fe(actualByLabel[stepLabel]))
	}
	return t, nil
}

// Fig14Hints reproduces Fig. 14: the effect of the hint rules across
// selectivities — plain DL2SQL (scan-time nUDF evaluation) vs. DL2SQL-OP
// (cost-model-driven placement).
func (s *Suite) Fig14Hints(sels []float64) (*Table, error) {
	t := &Table{
		ID:      "Fig. 14",
		Title:   "Effect of Hints for Collaborative Queries (Type 3, edge)",
		Columns: []string{"Selectivity", "DL2SQL All(s)", "DL2SQL-OP All(s)", "Speedup"},
		Notes: []string{
			"shape check: hints help most at low selectivity (pruned inference) and converge toward 1x as selectivity rises",
		},
	}
	plain := &strategies.DL2SQL{Optimized: false}
	op := &strategies.DL2SQL{Optimized: true}
	for _, sel := range sels {
		pBD, err := s.runType(plain, colquery.Type3, s.Cfg.QueriesPerType, sel)
		if err != nil {
			return nil, err
		}
		oBD, err := s.runType(op, colquery.Type3, s.Cfg.QueriesPerType, sel)
		if err != nil {
			return nil, err
		}
		speedup := pBD.Total() / oBD.Total()
		t.AddRow(fmt.Sprintf("%.2f%%", sel*100), f4(pBD.Total()), f4(oBD.Total()), fmt.Sprintf("%.2fx", speedup))
	}
	return t, nil
}

// TableITypes runs each query type once under every strategy — the
// executable companion of Table I.
func (s *Suite) TableITypes() (*Table, error) {
	t := &Table{
		ID:      "Table I",
		Title:   "Query Types: avg total seconds per strategy",
		Columns: []string{"Type", "Difficulty", "DL2SQL(s)", "DL2SQL-OP(s)", "DB-UDF(s)", "DB-PyTorch(s)"},
	}
	for _, typ := range []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4} {
		cells := []string{typ.String(), typ.Difficulty()}
		for _, strat := range strategies.All() {
			bd, err := s.runType(strat, typ, 1, s.Cfg.Selectivity)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f4(bd.Total()))
		}
		t.AddRow(cells...)
	}
	return t, nil
}
