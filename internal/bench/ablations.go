package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/colquery"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

// Ablation experiments for the design choices DESIGN.md calls out. These
// go beyond the paper's reported figures: they isolate individual
// mechanisms the paper describes but does not measure separately.

// AblationBatching compares per-sample SQL inference against the batched
// (SampleID-keyed) pipeline on the same workload — quantifying the
// statement-amortization the paper attributes to batch-mode nUDF
// execution.
func (s *Suite) AblationBatching() (*Table, error) {
	t := &Table{
		ID:      "Ablation A1",
		Title:   "Per-sample vs batched DL2SQL inference (Type 3 workload)",
		Columns: []string{"Mode", "SQL statements", "Inference(s)", "Total(s)"},
		Notes: []string{
			"shape check: batching cuts the SQL statement count by ~the batch size; wall-clock totals are comparable at laptop scale (per-statement overhead is small in this engine)",
		},
	}
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.5})
	if err != nil {
		return nil, err
	}
	for _, batched := range []bool{false, true} {
		strat := &strategies.DL2SQL{Optimized: false, Batched: batched}
		start := time.Now()
		_, bd, err := strat.Execute(context.Background(), s.Ctx, q)
		if err != nil {
			return nil, err
		}
		total := time.Since(start).Seconds()
		mode := "per-sample"
		if batched {
			mode = "batched"
		}
		t.AddRow(mode, fmt.Sprintf("%d", len(strat.LastSteps)), f4(bd.Inference), f4(total))
	}
	return t, nil
}

// AblationSymmetricJoin compares the standard build/probe hash join against
// the symmetric hash join (hint rule 3) on an nUDF-keyed join, reporting
// plan choice and execution time.
func (s *Suite) AblationSymmetricJoin() (*Table, error) {
	t := &Table{
		ID:      "Ablation A2",
		Title:   "Standard vs symmetric hash join on an nUDF join key",
		Columns: []string{"Join", "Plan operator", "Time(s)", "Rows"},
		Notes: []string{
			"both algorithms return identical results; the symmetric variant produces matches incrementally (hint rule 3)",
		},
	}
	db := s.Ctx.Dataset.DB
	// A cheap deterministic stand-in UDF so the join condition carries an
	// nUDF without dominating the timing.
	db.RegisterUDF(&sqldb.ScalarUDF{
		Name: "nudf_keyid", Arity: 1,
		Fn: func(args []sqldb.Datum) (sqldb.Datum, error) {
			v, _ := args[0].AsInt()
			return sqldb.Int(v % 6), nil
		},
		Cost: 10,
	})
	defer db.UnregisterUDF("nudf_keyid")
	query := `SELECT count(*) c FROM fabric F, video V WHERE nudf_keyid(V.videoID) = F.patternID`
	var rows int64
	for _, symmetric := range []bool{false, true} {
		h := &sqldb.QueryHints{SymmetricJoin: symmetric}
		plan, err := db.PlanSelect(query, h)
		if err != nil {
			return nil, err
		}
		op := "HashJoin"
		if strings.Contains(sqldb.Explain(plan), "SymmetricHashJoin") {
			op = "SymmetricHashJoin"
		}
		start := time.Now()
		res, err := db.ExecHinted(query, h)
		if err != nil {
			return nil, err
		}
		d := time.Since(start).Seconds()
		got, _ := res.Cols[0].Get(0).AsInt()
		if rows == 0 {
			rows = got
		} else if rows != got {
			return nil, fmt.Errorf("bench: join variants disagree: %d vs %d", rows, got)
		}
		name := "standard"
		if symmetric {
			name = "symmetric"
		}
		t.AddRow(name, op, f6(d), fmt.Sprintf("%d", got))
	}
	return t, nil
}

// AblationPredicateOrdering measures the engine's expensive-predicate
// ordering (rank = (selectivity−1)/cost): an expensive UDF predicate
// combined with a selective cheap predicate, with the orderer ON (default)
// vs pinned adversarially via hints.
func (s *Suite) AblationPredicateOrdering() (*Table, error) {
	t := &Table{
		ID:      "Ablation A3",
		Title:   "Expensive-predicate ordering (rank order vs forced-early UDF)",
		Columns: []string{"Ordering", "UDF calls", "Time(s)"},
		Notes: []string{
			"shape check: rank ordering evaluates the expensive UDF only on rows surviving the cheap selective predicate",
		},
	}
	db := s.Ctx.Dataset.DB
	calls := 0
	db.RegisterUDF(&sqldb.ScalarUDF{
		Name: "nudf_slowcheck", Arity: 1,
		Fn: func(args []sqldb.Datum) (sqldb.Datum, error) {
			calls++
			time.Sleep(50 * time.Microsecond) // simulated expensive model call
			return sqldb.Bool(true), nil
		},
		Cost: 1e6,
	})
	defer db.UnregisterUDF("nudf_slowcheck")
	// The cheap predicate is written as `humidity > 95 + 0` so it does not
	// qualify for the vectorized column-vs-literal fast path (which always
	// runs before generic predicates); this isolates the generic
	// rank-ordering decision the ablation measures.
	query := `SELECT count(*) c FROM fabric F WHERE nudf_slowcheck(F.transID) AND F.humidity > 95 + 0`

	// Rank ordering (default): cheap selective predicate first.
	calls = 0
	start := time.Now()
	if _, err := db.Exec(query); err != nil {
		return nil, err
	}
	t.AddRow("rank (default)", fmt.Sprintf("%d", calls), f6(time.Since(start).Seconds()))

	// Adversarial: tell the optimizer the UDF is free and perfectly
	// selective, so it runs first on every row.
	calls = 0
	h := &sqldb.QueryHints{
		UDFCost:        map[string]float64{"nudf_slowcheck": 0.0001},
		UDFSelectivity: map[string]float64{"nudf_slowcheck": 0.0001},
	}
	start = time.Now()
	if _, err := db.ExecHinted(query, h); err != nil {
		return nil, err
	}
	t.AddRow("udf-first (forced)", fmt.Sprintf("%d", calls), f6(time.Since(start).Seconds()))
	return t, nil
}
