// Package bench regenerates every table and figure of the paper's
// evaluation section (Section V) on the synthetic substrate: Table IV
// (storage), Fig. 8 (overall breakdown), Fig. 9 (CNN block costs), Fig. 10
// (relational operator costs), Fig. 11 (pre-join strategies), Table V
// (selectivity sweep), Table VI (model depth sweep), Fig. 12 (cost model
// accuracy vs. kernel/feature-map size), Fig. 13 (per-operator estimation),
// and Fig. 14 (hint effectiveness). Each experiment returns a Table that
// renders in the paper's row/series layout.
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // "Table IV", "Fig. 8", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render aligns the table for terminal output.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// f formats a float at 4 decimals for table cells.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// f formats a float at 6 decimals (for sub-millisecond cells).
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }

// fe formats in scientific notation (cost-model magnitudes).
func fe(v float64) string { return fmt.Sprintf("%.3e", v) }
