package bench

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/qerr"
	"repro/internal/schedule"
	"repro/internal/strategies"
)

// schedDiffFixture builds a strategies context over the standard small
// dataset, with the inference cache OFF so every forward pass physically
// runs (memoization would mask a wrong batched kernel).
func schedDiffFixture(t *testing.T) *strategies.Context {
	t.Helper()
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctx := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := ctx.BindDefaults(repo, 20); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestSchedulerDifferentialBitIdentical is the scheduler's end-to-end
// determinism gate: all four strategies run all four query templates with
// the scheduler off and then on, and each (strategy, template) pair must
// produce the exact same canonical row multiset — scheduling changes
// throughput, never results. DL2SQL and DL2SQL-OP never touch the
// scheduler, so they double as a control group; DB-UDF and DB-PyTorch
// route every forward pass through coalesced batches.
func TestSchedulerDifferentialBitIdentical(t *testing.T) {
	env := schedDiffFixture(t)
	for _, typ := range []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4} {
		q, err := colquery.GenerateAnalyzed(typ, colquery.TemplateParams{Selectivity: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strategies.All() {
			env.Scheduler = nil
			res, _, err := s.Execute(context.Background(), env, q)
			if err != nil {
				t.Fatalf("%s on %v scheduler-off: %v", s.Name(), typ, err)
			}
			off := diffCanonKey(res)

			sched := env.EnableScheduler(schedule.Config{MaxBatch: 8, Window: 200 * time.Microsecond})
			res, _, err = s.Execute(context.Background(), env, q)
			sched.Drain()
			env.Scheduler = nil
			if err != nil {
				t.Fatalf("%s on %v scheduler-on: %v", s.Name(), typ, err)
			}
			if on := diffCanonKey(res); on != off {
				t.Fatalf("%s on %v: scheduler changed results:\n--- off ---\n%s\n--- on ---\n%s",
					s.Name(), typ, off, on)
			}
		}
	}
}

// TestSchedulerConcurrentQueriesAgree runs many DB-PyTorch executions of
// the same template concurrently through one scheduler — the production
// shape, where batches mix waiters from different queries — and asserts
// every result matches the serial scheduler-off baseline.
func TestSchedulerConcurrentQueriesAgree(t *testing.T) {
	env := schedDiffFixture(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type2, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	strat := &strategies.DBPyTorch{}
	res, _, err := strat.Execute(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}
	want := diffCanonKey(res)

	sched := env.EnableScheduler(schedule.Config{MaxBatch: 16, Window: 300 * time.Microsecond})
	defer sched.Drain()
	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	keys := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, _, err := strat.Execute(context.Background(), env, q)
			if err != nil {
				errs[w] = err
				return
			}
			keys[w] = diffCanonKey(res)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if keys[w] != want {
			t.Fatalf("worker %d disagrees with scheduler-off baseline:\n--- want ---\n%s\n--- got ---\n%s",
				w, want, keys[w])
		}
	}
	st := sched.Stats()
	if st.Submitted == 0 {
		t.Fatal("concurrent DB-PyTorch executions never used the scheduler")
	}
	if st.CacheHits+st.DedupHits+st.Executed != st.Submitted {
		t.Fatalf("accounting leak: submitted=%d != cache=%d + dedup=%d + executed=%d",
			st.Submitted, st.CacheHits, st.DedupHits, st.Executed)
	}
}

// TestSchedulerChaosCancelledBatchmate is the chaos case from the issue:
// two queries' inference lands in the same scheduler, one query is
// cancelled mid-flight, and the survivor must complete with results
// identical to the scheduler-off baseline — a cancelled waiter never
// poisons its batchmates.
func TestSchedulerChaosCancelledBatchmate(t *testing.T) {
	env := schedDiffFixture(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type2, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	strat := &strategies.DBPyTorch{}
	res, _, err := strat.Execute(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}
	want := diffCanonKey(res)

	sched := env.EnableScheduler(schedule.Config{MaxBatch: 16, Window: 2 * time.Millisecond})
	defer sched.Drain()
	for round := 0; round < 3; round++ {
		cancelCtx, cancel := context.WithCancel(context.Background())
		victimDone := make(chan error, 1)
		go func() {
			_, _, err := strat.Execute(cancelCtx, env, q)
			victimDone <- err
		}()
		// Cancel the victim while its submissions are (likely) in flight;
		// the survivor starts concurrently and must be untouched.
		survivorDone := make(chan struct{})
		var surKey string
		var surErr error
		go func() {
			defer close(survivorDone)
			res, _, err := strat.Execute(context.Background(), env, q)
			if err != nil {
				surErr = err
				return
			}
			surKey = diffCanonKey(res)
		}()
		time.Sleep(time.Duration(round) * time.Millisecond)
		cancel()
		verr := <-victimDone
		<-survivorDone
		if verr != nil && !errors.Is(verr, qerr.ErrCancelled) {
			t.Fatalf("round %d: victim failed with %v, want nil or ErrCancelled", round, verr)
		}
		if surErr != nil {
			t.Fatalf("round %d: survivor poisoned by cancelled batchmate: %v", round, surErr)
		}
		if surKey != want {
			t.Fatalf("round %d: survivor result drifted:\n--- want ---\n%s\n--- got ---\n%s", round, want, surKey)
		}
	}
}

// TestSchedulerFallbackLadderIntact: with the scheduler on and the native
// backend's model decode sabotaged via the scheduler batch fault, DB-UDF
// must still degrade to DL2SQL exactly as it does scheduler-off.
func TestSchedulerFallbackLadderIntact(t *testing.T) {
	env := schedDiffFixture(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := (&strategies.DL2SQL{}).Execute(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}
	want := diffCanonKey(res)

	inj := faults.New(1, faults.Rule{Point: faults.PointSchedBatch})
	sched := env.EnableScheduler(schedule.Config{Window: time.Millisecond, Faults: inj})
	defer sched.Drain()
	res, bd, err := strategies.ExecuteWithFallback(context.Background(), env, &strategies.DBUDF{}, q)
	if err != nil {
		t.Fatalf("fallback ladder with faulted scheduler: %v", err)
	}
	if len(bd.FallbackPath) == 0 || bd.FallbackPath[len(bd.FallbackPath)-1] != "DL2SQL" {
		t.Fatalf("fallback path %v, want degradation to DL2SQL", bd.FallbackPath)
	}
	if got := diffCanonKey(res); got != want {
		t.Fatalf("degraded result differs from DL2SQL baseline:\n%s\nvs\n%s", want, got)
	}
}
