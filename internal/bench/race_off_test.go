//go:build !race

package bench

// raceEnabled reports whether the race detector is active. Wall-clock shape
// tests (Fig. 8, Fig. 11) compare real execution times across strategies;
// race instrumentation slows the interpreted SQL path far more than the
// native float loops, inverting the comparisons the paper's shapes rest on,
// so those tests skip under -race.
const raceEnabled = false
