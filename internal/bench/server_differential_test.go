package bench

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/server"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

// serverFixture stands a serving front end up over a dataset + bound
// models and returns a connected client alongside the embedded handles.
func serverFixture(t *testing.T) (*strategies.Context, *iotdata.Dataset, *server.Server, *server.Client) {
	t.Helper()
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	env := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := env.BindDefaults(repo, 20); err != nil {
		t.Fatal(err)
	}
	srv := server.New(ds.DB, env, server.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cli := server.Dial(hs.URL).WithHTTPClient(hs.Client())
	if err := cli.Connect(context.Background(), "diff"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(context.Background()) })
	return env, ds, srv, cli
}

// exactRowKeys renders every row with *bit-exact* datum encodings (floats
// as their IEEE-754 bit patterns, so NaN == NaN and -0 != +0) and sorts
// the rows. Row order is not part of the contract for queries without a
// total ORDER BY — GROUP BY output follows hash-map iteration order, which
// legitimately varies run to run — but the bits of every value are.
// Contrast with diffCanonKey, which rounds floats to 9 digits to tolerate
// cross-strategy summation-order differences; here both sides run the
// *same* strategy, so the values must match exactly.
func exactRowKeys(res *sqldb.Result) []string {
	n := res.NumRows()
	rows := make([]string, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for j, c := range res.Cols {
			if j > 0 {
				sb.WriteByte('|')
			}
			d := c.Get(i)
			switch {
			case d.IsNull():
				sb.WriteString("∅")
			case d.T == sqldb.TFloat:
				fmt.Fprintf(&sb, "f:%016x", math.Float64bits(d.F))
			case d.T == sqldb.TBlob:
				fmt.Fprintf(&sb, "x:%x", d.B)
			default:
				fmt.Fprintf(&sb, "%d:%d:%s", d.T, d.I, d.S)
			}
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return rows
}

// resultsBitIdentical compares two results schema-exactly and value
// bit-exactly (order-independent, see exactRowKeys).
func resultsBitIdentical(a, b *sqldb.Result) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.NumRows() != b.NumRows() || len(a.Schema) != len(b.Schema) {
		return false
	}
	for i, c := range a.Schema {
		if b.Schema[i].Name != c.Name || b.Schema[i].Type != c.Type {
			return false
		}
	}
	ra, rb := exactRowKeys(a), exactRowKeys(b)
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// TestServerDifferentialStrategies is the serving-layer differential
// suite: every collaborative query template (Types 1–4) under every
// strategy (DL2SQL, DL2SQL-OP, DB-UDF, DB-PyTorch) executed through the
// HTTP server must be *bit-identical* to the same strategy executed
// embedded — same schema, same row order, same float bits. This pins both
// halves of the serving path at once: the server's execution context
// assembly changes nothing about the query's semantics, and the
// tagged-string wire format loses nothing in transit.
func TestServerDifferentialStrategies(t *testing.T) {
	env, ds, _, cli := serverFixture(t)
	// One fixed executor degree for both paths: per-PR-1, results are
	// deterministic at a given parallelism, which is what makes the
	// bit-identity comparison meaningful.
	ds.DB.Parallelism = 1

	for _, typ := range []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4} {
		q, err := colquery.GenerateAnalyzed(typ, colquery.TemplateParams{Selectivity: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strategies.All() {
			want, _, err := s.Execute(context.Background(), env, q)
			if err != nil {
				t.Fatalf("embedded %s on %v: %v", s.Name(), typ, err)
			}
			got, err := cli.ColQuery(context.Background(), q.SQL, s.Name(), false)
			if err != nil {
				t.Fatalf("server %s on %v: %v", s.Name(), typ, err)
			}
			if got.Strategy != s.Name() {
				t.Fatalf("server reported strategy %q, want %q", got.Strategy, s.Name())
			}
			if len(got.FallbackPath) != 0 {
				t.Fatalf("unexpected fallback path %v", got.FallbackPath)
			}
			if !resultsBitIdentical(want, got.Result) {
				t.Fatalf("%s on %v: server result is not bit-identical to embedded\nembedded: %s\nserver:   %s",
					s.Name(), typ, diffCanonKey(want), diffCanonKey(got.Result))
			}
		}
	}
}

// TestServerDifferentialPlainSQL extends the bit-identity contract to the
// plain relational surface: aggregates, string grouping, float math, and
// NULL-producing outer joins all round-trip exactly through /v1/query.
func TestServerDifferentialPlainSQL(t *testing.T) {
	_, ds, _, cli := serverFixture(t)
	ds.DB.Parallelism = 1
	queries := []string{
		`SELECT count(*) AS c FROM fabric`,
		`SELECT patternID, avg(meter) AS m, max(temperature) AS hi FROM fabric GROUP BY patternID ORDER BY patternID`,
		`SELECT region, count(*) AS n, sum(amount) AS total FROM client C, order_tbl O WHERE C.clientID = O.clientID GROUP BY region ORDER BY region`,
		`SELECT transID, humidity FROM device WHERE temperature > 20.5 ORDER BY humidity DESC, transID LIMIT 50`,
	}
	for _, q := range queries {
		want, err := ds.DB.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := cli.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s via server: %v", q, err)
		}
		if !resultsBitIdentical(want, got) {
			t.Fatalf("%s: server result differs from embedded", q)
		}
	}
}
