package bench

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/colquery"
	"repro/internal/hwprofile"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/obs"
	"repro/internal/strategies"
)

// Config sizes the experimental fixtures. The defaults are laptop-scale:
// the paper's absolute setting (100 M tuples, 224×224 keyframes, 100
// queries per type) is reachable by raising these knobs, but every
// comparative shape the paper reports already emerges at this scale.
type Config struct {
	// Scale is the iotdata scale unit (video gets 100×Scale rows).
	Scale int
	// KeyframeSide is the keyframe resolution.
	KeyframeSide int
	// QueriesPerType is how many queries of each type the mixed benchmark
	// runs (the paper uses 100).
	QueriesPerType int
	// Selectivity is the default accumulated relational selectivity
	// (paper default 0.01% = 0.0001; scaled datasets need larger values to
	// keep at least a few matching rows).
	Selectivity float64
	// CalibrationSamples sizes the offline histogram calibration.
	CalibrationSamples int
	// Depths are the ResNet depths for Table IV / Table VI.
	Depths []int
	// Seed drives all pseudo-randomness.
	Seed int64
	// Parallelism is the SQL executor's worker degree: 0 = process default
	// (runtime.NumCPU()), 1 = serial, N > 1 = up to N workers per operator.
	Parallelism int
	// CacheCapacity, when > 0, enables the statement/plan cache and
	// inference memoization with that many entries per LRU. 0 (the
	// default) runs every experiment uncached, matching the paper's
	// one-shot measurement; cache counters land in MetricsReport.
	CacheCapacity int
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Scale:              2,
		KeyframeSide:       8,
		QueriesPerType:     2,
		Selectivity:        0.05,
		CalibrationSamples: 30,
		Depths:             []int{5, 10, 15, 20, 25, 30, 35, 40},
		Seed:               42,
	}
}

// Suite owns the shared fixtures for all experiments.
type Suite struct {
	Cfg  Config
	Ctx  *strategies.Context
	Repo *modelrepo.Repository
}

// NewSuite generates the dataset, builds the model repository, and binds
// the template nUDFs.
func NewSuite(cfg Config) (*Suite, error) {
	ds, err := iotdata.Generate(iotdata.Config{
		Scale:        cfg.Scale,
		KeyframeSide: cfg.KeyframeSide,
		Seed:         cfg.Seed,
		PatternCount: 6,
	})
	if err != nil {
		return nil, err
	}
	ctx := strategies.NewContext(ds)
	ctx.Metrics = obs.NewRegistry()
	// The executor shares the suite registry, so parallel operator/morsel
	// counters land in MetricsReport next to the strategy histograms.
	ds.DB.Parallelism = cfg.Parallelism
	ds.DB.Metrics = ctx.Metrics
	if cfg.CacheCapacity > 0 {
		ds.DB.EnableCache(cfg.CacheCapacity)
		ctx.EnableInferCache(cfg.CacheCapacity)
	}
	repo := modelrepo.NewRepository(cfg.KeyframeSide, cfg.Seed)
	if err := ctx.BindDefaults(repo, cfg.CalibrationSamples); err != nil {
		return nil, err
	}
	return &Suite{Cfg: cfg, Ctx: ctx, Repo: repo}, nil
}

// MetricsReport snapshots the suite's metrics registry — every strategy
// execution performed so far, as per-strategy query counters and phase
// latency quantiles — into a renderable table. Run it after the experiments
// so the report covers them.
func (s *Suite) MetricsReport() (*Table, error) {
	t := &Table{
		ID:      "Metrics",
		Title:   "accumulated per-strategy phase latencies across all executions",
		Columns: []string{"histogram", "count", "p50 (s)", "p95 (s)", "p99 (s)", "mean (s)", "max (s)"},
	}
	if s.Ctx.Metrics == nil {
		t.Notes = append(t.Notes, "metrics registry disabled")
		return t, nil
	}
	snap := s.Ctx.Metrics.Snapshot()
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		t.AddRow(name, fmt.Sprintf("%d", h.Count),
			f4(h.P50), f4(h.P95), f4(h.P99), f4(h.Mean), f4(h.Max))
	}
	ctrs := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		ctrs = append(ctrs, name)
	}
	sort.Strings(ctrs)
	for _, name := range ctrs {
		t.Notes = append(t.Notes, fmt.Sprintf("%s = %d", name, snap.Counters[name]))
	}
	return t, nil
}

// runMix executes the mixed query benchmark under one strategy and profile,
// returning the average per-query breakdown.
func (s *Suite) runMix(strat strategies.Strategy, profile hwprofile.Profile, nPerType int, sel float64) (strategies.CostBreakdown, error) {
	old := s.Ctx.Profile
	s.Ctx.Profile = profile
	defer func() { s.Ctx.Profile = old }()
	queries, err := colquery.Mix(nPerType, sel)
	if err != nil {
		return strategies.CostBreakdown{}, err
	}
	var total strategies.CostBreakdown
	for _, q := range queries {
		_, bd, err := strat.Execute(context.Background(), s.Ctx, q)
		if err != nil {
			return total, fmt.Errorf("bench: %s on %v: %w", strat.Name(), q.Type, err)
		}
		total.Add(bd)
	}
	return total.Scale(float64(len(queries))), nil
}

// runType executes n queries of one type under one strategy on the edge
// profile.
func (s *Suite) runType(strat strategies.Strategy, typ colquery.QueryType, n int, sel float64) (strategies.CostBreakdown, error) {
	var total strategies.CostBreakdown
	for i := 0; i < n; i++ {
		q, err := colquery.GenerateAnalyzed(typ, colquery.TemplateParams{Selectivity: sel})
		if err != nil {
			return total, err
		}
		_, bd, err := strat.Execute(context.Background(), s.Ctx, q)
		if err != nil {
			return total, fmt.Errorf("bench: %s on %v: %w", strat.Name(), typ, err)
		}
		total.Add(bd)
	}
	return total.Scale(float64(n)), nil
}
