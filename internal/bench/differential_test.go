package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

// diffCanonKey renders a result as an order-independent canonical string:
// rows sorted, floats rounded to 9 significant digits so legitimate
// summation-order differences (serial vs chunked parallel aggregation,
// strategy-specific evaluation order) do not register as disagreement.
func diffCanonKey(res *sqldb.Result) string {
	n := res.NumRows()
	rows := make([]string, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for j, c := range res.Cols {
			if j > 0 {
				sb.WriteByte('|')
			}
			d := c.Get(i)
			if d.T == sqldb.TFloat {
				sb.WriteString(fmt.Sprintf("%.9g", d.F))
			} else {
				sb.WriteString(d.String())
			}
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestDifferentialStrategiesAndParallelism is the end-to-end differential
// harness for the executor: every inference strategy (DL2SQL, DL2SQL-OP,
// DB-UDF, DB-PyTorch) runs every collaborative query template (Types 1–4)
// at executor parallelism 1 and 4, and all eight results per template must
// agree on the same canonical row multiset. This pins two properties at
// once: the strategies agree with each other (the paper's correctness
// baseline), and the morsel-parallel executor agrees with the serial one
// under every strategy's query shape — including nUDF-heavy plans.
func TestDifferentialStrategiesAndParallelism(t *testing.T) {
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctx := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := ctx.BindDefaults(repo, 20); err != nil {
		t.Fatal(err)
	}
	for _, typ := range []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4} {
		q, err := colquery.GenerateAnalyzed(typ, colquery.TemplateParams{Selectivity: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		var wantKey, wantFrom string
		for _, deg := range []int{1, 4} {
			ds.DB.Parallelism = deg
			for _, s := range strategies.All() {
				res, _, err := s.Execute(context.Background(), ctx, q)
				if err != nil {
					t.Fatalf("%s at parallelism %d on %v: %v", s.Name(), deg, typ, err)
				}
				label := fmt.Sprintf("%s@par=%d", s.Name(), deg)
				key := diffCanonKey(res)
				if wantFrom == "" {
					wantKey, wantFrom = key, label
					continue
				}
				if key != wantKey {
					t.Fatalf("%v: %s disagrees with %s:\n--- %s ---\n%s\n--- %s ---\n%s",
						typ, label, wantFrom, wantFrom, wantKey, label, key)
				}
			}
		}
	}
}
