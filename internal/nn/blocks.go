package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ResidualBlock is the ResNet "convolution block": a main path of
// Conv+BN(+ReLU) stages plus a projection shortcut (1×1 conv + BN), summed
// and passed through a final ReLU — exactly the structure the paper's Q4/Q5
// SQL reproduces (feature_cbshortcut_conv_bn + feature_cb3_conv_bn, then the
// UPDATE-based ReLU).
type ResidualBlock struct {
	LayerName string
	Main      []Layer // Conv/BN/ReLU chain
	Shortcut  []Layer // projection path; empty means identity
}

// NewResidualBlock builds a standard two-conv residual block with a
// projection shortcut mapping inC channels to outC at the given stride.
func NewResidualBlock(name string, inC, outC, stride int, seed int64) *ResidualBlock {
	return &ResidualBlock{
		LayerName: name,
		Main: []Layer{
			NewConv2D(name+"_conv1", inC, outC, 3, stride, 1, seed),
			NewBatchNorm(name+"_bn1", outC),
			&ReLU{LayerName: name + "_relu1"},
			NewConv2D(name+"_conv2", outC, outC, 3, 1, 1, seed+1),
			NewBatchNorm(name+"_bn2", outC),
		},
		Shortcut: []Layer{
			NewConv2D(name+"_convsc", inC, outC, 1, stride, 0, seed+2),
			NewBatchNorm(name+"_bnsc", outC),
		},
	}
}

// NewIdentityResidualBlock builds a residual block whose shortcut is the
// identity (the ResNet "identity block"); channel count and spatial size are
// preserved.
func NewIdentityResidualBlock(name string, c int, seed int64) *ResidualBlock {
	b := NewResidualBlock(name, c, c, 1, seed)
	b.Shortcut = nil
	return b
}

func (b *ResidualBlock) Name() string { return b.LayerName }

func (b *ResidualBlock) Kind() string {
	if len(b.Shortcut) == 0 {
		return KindIdentity
	}
	return KindResidual
}

func (b *ResidualBlock) OutShape(in []int) ([]int, error) {
	cur := in
	var err error
	for _, l := range b.Main {
		if cur, err = l.OutShape(cur); err != nil {
			return nil, err
		}
	}
	sc := in
	for _, l := range b.Shortcut {
		if sc, err = l.OutShape(sc); err != nil {
			return nil, err
		}
	}
	if prod(cur) != prod(sc) || len(cur) != len(sc) {
		return nil, fmt.Errorf("nn: residual block %s paths disagree: main %v vs shortcut %v", b.LayerName, cur, sc)
	}
	return cur, nil
}

func (b *ResidualBlock) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	main := in
	var err error
	for _, l := range b.Main {
		if main, err = l.Forward(main); err != nil {
			return nil, fmt.Errorf("nn: block %s main path: %w", b.LayerName, err)
		}
	}
	short := in
	for _, l := range b.Shortcut {
		if short, err = l.Forward(short); err != nil {
			return nil, fmt.Errorf("nn: block %s shortcut: %w", b.LayerName, err)
		}
	}
	sum, err := tensor.Add(main, short)
	if err != nil {
		return nil, fmt.Errorf("nn: block %s residual add: %w", b.LayerName, err)
	}
	return (&ReLU{LayerName: b.LayerName + "_relu"}).Forward(sum)
}

func (b *ResidualBlock) ParamCount() int64 {
	n := int64(0)
	for _, l := range b.Main {
		n += l.ParamCount()
	}
	for _, l := range b.Shortcut {
		n += l.ParamCount()
	}
	return n
}

func (b *ResidualBlock) FLOPs(in []int) int64 {
	n := int64(0)
	cur := in
	for _, l := range b.Main {
		n += l.FLOPs(cur)
		if next, err := l.OutShape(cur); err == nil {
			cur = next
		}
	}
	sc := in
	for _, l := range b.Shortcut {
		n += l.FLOPs(sc)
		if next, err := l.OutShape(sc); err == nil {
			sc = next
		}
	}
	return n + int64(prod(cur))*2 // add + relu
}

// DenseBlock is a DenseNet-style block: each stage consumes the
// concatenation of the block input and all previous stage outputs along the
// channel axis.
type DenseBlock struct {
	LayerName string
	Stages    []*Conv2D // stage i maps (inC + i*growth) → growth channels
	Growth    int
	InC       int
}

// NewDenseBlock builds a dense block with the given number of 3×3 stages and
// growth rate.
func NewDenseBlock(name string, inC, growth, stages int, seed int64) *DenseBlock {
	b := &DenseBlock{LayerName: name, Growth: growth, InC: inC}
	for i := 0; i < stages; i++ {
		b.Stages = append(b.Stages,
			NewConv2D(fmt.Sprintf("%s_conv%d", name, i+1), inC+i*growth, growth, 3, 1, 1, seed+int64(i)))
	}
	return b
}

func (b *DenseBlock) Name() string { return b.LayerName }
func (b *DenseBlock) Kind() string { return KindDense }

func (b *DenseBlock) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.InC {
		return nil, shapeErr(b.LayerName, fmt.Sprintf("CHW with C=%d", b.InC), in)
	}
	return []int{b.InC + len(b.Stages)*b.Growth, in[1], in[2]}, nil
}

func (b *DenseBlock) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := b.OutShape(in.Shape()); err != nil {
		return nil, err
	}
	h, w := in.Dim(1), in.Dim(2)
	acc := in
	for _, conv := range b.Stages {
		out, err := conv.Forward(acc)
		if err != nil {
			return nil, fmt.Errorf("nn: dense block %s stage %s: %w", b.LayerName, conv.Name(), err)
		}
		acc = concatChannels(acc, out, h, w)
	}
	return acc, nil
}

func concatChannels(a, b *tensor.Tensor, h, w int) *tensor.Tensor {
	ca, cb := a.Dim(0), b.Dim(0)
	out := tensor.New(ca+cb, h, w)
	copy(out.Data(), a.Data())
	copy(out.Data()[ca*h*w:], b.Data())
	return out
}

func (b *DenseBlock) ParamCount() int64 {
	n := int64(0)
	for _, s := range b.Stages {
		n += s.ParamCount()
	}
	return n
}

func (b *DenseBlock) FLOPs(in []int) int64 {
	n := int64(0)
	c := b.InC
	for _, s := range b.Stages {
		n += s.FLOPs([]int{c, in[1], in[2]})
		c += b.Growth
	}
	return n
}
