package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Linear is a fully-connected layer y = Wx + b over a rank-1 input. The
// paper treats full connection as "a specific CNN operator with kernel size
// 1 and no striding"; the DL2SQL translator exploits exactly that
// equivalence.
type Linear struct {
	LayerName string
	In, Out   int
	Weight    *tensor.Tensor // [Out, In]
	Bias      []float64
}

// NewLinear builds a fully-connected layer with seeded deterministic init.
func NewLinear(name string, in, out int, seed int64) *Linear {
	l := &Linear{
		LayerName: name, In: in, Out: out,
		Weight: tensor.New(out, in),
		Bias:   make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	rng := newSplitMix(seed)
	for i := range l.Weight.Data() {
		l.Weight.Data()[i] = (rng.float() - 0.5) * 2 * scale
	}
	for i := range l.Bias {
		l.Bias[i] = (rng.float() - 0.5) * 0.1
	}
	return l
}

func (l *Linear) Name() string { return l.LayerName }
func (l *Linear) Kind() string { return KindLinear }

func (l *Linear) OutShape(in []int) ([]int, error) {
	if prod(in) != l.In {
		return nil, shapeErr(l.LayerName, fmt.Sprintf("%d features", l.In), in)
	}
	return []int{l.Out}, nil
}

func (l *Linear) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := l.OutShape(in.Shape()); err != nil {
		return nil, err
	}
	// MatVec fans its rows — the layer's output features — across the
	// shared worker pool for large layers.
	y, err := tensor.MatVec(l.Weight, in.Data())
	if err != nil {
		return nil, err
	}
	for i := range y {
		y[i] += l.Bias[i]
	}
	return tensor.FromSlice(y, l.Out), nil
}

func (l *Linear) ParamCount() int64 { return int64(l.Weight.Len() + len(l.Bias)) }

func (l *Linear) FLOPs(in []int) int64 { return int64(l.In) * int64(l.Out) * 2 }

// BasicAttention is the paper's "basic attention" variant (Table II): a
// learned attention over the channels of a flattened feature vector,
// derived — as the paper notes — from the full-connection implementation.
// score = softmax(W_s · x); out_i = score_i * (W_v · x)_i.
type BasicAttention struct {
	LayerName string
	Dim       int
	WScore    *tensor.Tensor // [Dim, Dim]
	WValue    *tensor.Tensor // [Dim, Dim]
}

// NewBasicAttention builds a basic attention layer over Dim features.
func NewBasicAttention(name string, dim int, seed int64) *BasicAttention {
	a := &BasicAttention{
		LayerName: name, Dim: dim,
		WScore: tensor.New(dim, dim),
		WValue: tensor.New(dim, dim),
	}
	scale := math.Sqrt(1.0 / float64(dim))
	rng := newSplitMix(seed)
	for i := range a.WScore.Data() {
		a.WScore.Data()[i] = (rng.float() - 0.5) * 2 * scale
	}
	for i := range a.WValue.Data() {
		a.WValue.Data()[i] = (rng.float() - 0.5) * 2 * scale
	}
	return a
}

func (a *BasicAttention) Name() string { return a.LayerName }
func (a *BasicAttention) Kind() string { return KindAttention }

func (a *BasicAttention) OutShape(in []int) ([]int, error) {
	if prod(in) != a.Dim {
		return nil, shapeErr(a.LayerName, fmt.Sprintf("%d features", a.Dim), in)
	}
	return []int{a.Dim}, nil
}

func (a *BasicAttention) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := a.OutShape(in.Shape()); err != nil {
		return nil, err
	}
	scores, err := tensor.MatVec(a.WScore, in.Data())
	if err != nil {
		return nil, err
	}
	sm, err := (&Softmax{LayerName: a.LayerName + "_softmax"}).Forward(tensor.FromSlice(scores, a.Dim))
	if err != nil {
		return nil, err
	}
	values, err := tensor.MatVec(a.WValue, in.Data())
	if err != nil {
		return nil, err
	}
	out := tensor.New(a.Dim)
	for i := range values {
		out.Data()[i] = sm.Data()[i] * values[i]
	}
	return out, nil
}

func (a *BasicAttention) ParamCount() int64 { return int64(a.WScore.Len() + a.WValue.Len()) }

func (a *BasicAttention) FLOPs(in []int) int64 {
	return 2 * int64(a.Dim) * int64(a.Dim) * 2
}
