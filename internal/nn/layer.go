// Package nn is a from-scratch neural-network inference engine. It stands in
// for the PyTorch/LibTorch runtime of the paper: the independent-processing
// strategy calls it through a (simulated) cross-system serving boundary, the
// loose-integration strategy calls it in-process from a database UDF, and the
// tight-integration strategy (DL2SQL) is validated against it for numerical
// equivalence.
//
// Only the inference pathway is implemented — the paper trains offline on
// cloud servers and ships frozen models to edge devices, so edge-side code
// never needs gradients.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is a frozen neural operator.
//
// Forward must not retain or mutate its input. OutShape reports the output
// shape for a given input shape without computing anything, which the cost
// model and the DL2SQL translator both rely on.
type Layer interface {
	// Name returns the layer's unique name within its model.
	Name() string
	// Kind returns the operator kind, e.g. "conv2d", "batchnorm", "relu".
	Kind() string
	// Forward runs inference on a single input tensor.
	Forward(in *tensor.Tensor) (*tensor.Tensor, error)
	// OutShape returns the output shape for the given input shape.
	OutShape(in []int) ([]int, error)
	// ParamCount returns the number of learned parameters.
	ParamCount() int64
	// FLOPs estimates the floating-point operations needed for one forward
	// pass on the given input shape (multiply-adds count as 2).
	FLOPs(in []int) int64
}

// Kinds of layers understood by the serializer and the DL2SQL translator.
const (
	KindConv2D       = "conv2d"
	KindDeconv2D     = "deconv2d"
	KindBatchNorm    = "batchnorm"
	KindInstanceNorm = "instancenorm"
	KindReLU         = "relu"
	KindSigmoid      = "sigmoid"
	KindMaxPool      = "maxpool"
	KindAvgPool      = "avgpool"
	KindLinear       = "linear"
	KindSoftmax      = "softmax"
	KindFlatten      = "flatten"
	KindAttention    = "attention"
	KindResidual     = "residual"
	KindIdentity     = "identityblock"
	KindDense        = "denseblock"
	KindGlobalAvg    = "globalavgpool"
)

func shapeErr(layer, want string, got []int) error {
	return fmt.Errorf("nn: layer %s expects %s input, got shape %v", layer, want, got)
}

// prod returns the product of dims.
func prod(dims []int) int {
	p := 1
	for _, d := range dims {
		p *= d
	}
	return p
}
