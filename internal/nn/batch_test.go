package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// batchFixture is a conv→pool→linear chain exercising both batched
// kernels plus per-sample-only layers in between.
func batchFixture() *Model {
	m := NewModel("batchy", []int{1, 8, 8}, []string{"a", "b", "c"})
	m.Add(
		NewConv2D("c1", 1, 4, 3, 1, 1, 7),
		&ReLU{LayerName: "r1"},
		&MaxPool{LayerName: "p1", K: 2, Stride: 2},
		NewConv2D("c2", 4, 8, 3, 1, 0, 8),
		&ReLU{LayerName: "r2"},
		&Flatten{LayerName: "f"},
		NewLinear("fc", 8*2*2, 3, 9),
		&Softmax{LayerName: "sm"},
	)
	return m
}

func randInputs(n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		in := tensor.New(1, 8, 8)
		d := in.Data()
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		ins[i] = in
	}
	return ins
}

// TestForwardBatchBitIdentical is the kernel-level determinism contract:
// ForwardBatch over N inputs must produce bit-for-bit the outputs of N
// independent Forward calls — same operands, same accumulation order,
// just a wider MatMul.
func TestForwardBatchBitIdentical(t *testing.T) {
	m := batchFixture()
	for _, n := range []int{1, 2, 3, 7, 16} {
		ins := randInputs(n, int64(100+n))
		batched, err := m.ForwardBatch(ins)
		if err != nil {
			t.Fatalf("n=%d: ForwardBatch: %v", n, err)
		}
		if len(batched) != n {
			t.Fatalf("n=%d: got %d outputs", n, len(batched))
		}
		for i, in := range ins {
			single, err := m.Forward(in)
			if err != nil {
				t.Fatalf("n=%d sample %d: Forward: %v", n, i, err)
			}
			bd, sd := batched[i].Data(), single.Data()
			if len(bd) != len(sd) {
				t.Fatalf("n=%d sample %d: output sizes %d vs %d", n, i, len(bd), len(sd))
			}
			for j := range bd {
				if math.Float64bits(bd[j]) != math.Float64bits(sd[j]) {
					t.Fatalf("n=%d sample %d elem %d: batched %v != single %v (bit mismatch)",
						n, i, j, bd[j], sd[j])
				}
			}
		}
	}
}

// TestPredictBatchMatchesPredict pins the argmax layer on top.
func TestPredictBatchMatchesPredict(t *testing.T) {
	m := batchFixture()
	ins := randInputs(9, 42)
	idxs, err := m.PredictBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range ins {
		want, _, err := m.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		if idxs[i] != want {
			t.Fatalf("sample %d: PredictBatch=%d Predict=%d", i, idxs[i], want)
		}
	}
}

// TestPredictBatchEmpty: a zero-length batch is a no-op, not a panic.
func TestPredictBatchEmpty(t *testing.T) {
	m := batchFixture()
	idxs, err := m.PredictBatch(nil)
	if err != nil || idxs != nil {
		t.Fatalf("empty batch: %v %v", idxs, err)
	}
}

// TestForwardBatchMixedShapes: shape-heterogeneous batches fall back to
// the per-sample loop rather than mis-stacking.
func TestForwardBatchMixedShapes(t *testing.T) {
	m := NewModel("flex", []int{4}, nil)
	m.Add(&ReLU{LayerName: "r"})
	ins := []*tensor.Tensor{tensor.New(4).Fill(-1), tensor.New(2, 2).Fill(2)}
	outs, err := m.ForwardBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Data()[0] != 0 || outs[1].Data()[0] != 2 {
		t.Fatalf("mixed-shape batch mis-applied: %v %v", outs[0].Data(), outs[1].Data())
	}
}
