package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is max(0, x), the activation the paper rewrites as
// "UPDATE ... SET Value = 0 WHERE Value < 0".
type ReLU struct{ LayerName string }

func (r *ReLU) Name() string { return r.LayerName }
func (r *ReLU) Kind() string { return KindReLU }

func (r *ReLU) OutShape(in []int) ([]int, error) { return in, nil }

func (r *ReLU) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out, nil
}

func (r *ReLU) ParamCount() int64    { return 0 }
func (r *ReLU) FLOPs(in []int) int64 { return int64(prod(in)) }

// Sigmoid is 1/(1+e^-x), listed alongside ReLU in Table II's activation row.
type Sigmoid struct{ LayerName string }

func (s *Sigmoid) Name() string { return s.LayerName }
func (s *Sigmoid) Kind() string { return KindSigmoid }

func (s *Sigmoid) OutShape(in []int) ([]int, error) { return in, nil }

func (s *Sigmoid) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	out.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return out, nil
}

func (s *Sigmoid) ParamCount() int64    { return 0 }
func (s *Sigmoid) FLOPs(in []int) int64 { return int64(prod(in)) * 4 }

// Softmax converts a logit vector into a probability distribution. It is the
// classification head of every model in the repository; the DL2SQL compiler
// emits it as exp/SUM SQL over the final feature table.
type Softmax struct{ LayerName string }

func (s *Softmax) Name() string { return s.LayerName }
func (s *Softmax) Kind() string { return KindSoftmax }

func (s *Softmax) OutShape(in []int) ([]int, error) { return in, nil }

func (s *Softmax) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	d := out.Data()
	if len(d) == 0 {
		return out, nil
	}
	// Shift by max for numeric stability.
	m := d[0]
	for _, v := range d {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range d {
		e := math.Exp(v - m)
		d[i] = e
		sum += e
	}
	for i := range d {
		d[i] /= sum
	}
	return out, nil
}

func (s *Softmax) ParamCount() int64    { return 0 }
func (s *Softmax) FLOPs(in []int) int64 { return int64(prod(in)) * 5 }

// Flatten reshapes any tensor into a rank-1 vector; it sits between the
// convolutional stack and the fully-connected classification head.
type Flatten struct{ LayerName string }

func (f *Flatten) Name() string { return f.LayerName }
func (f *Flatten) Kind() string { return KindFlatten }

func (f *Flatten) OutShape(in []int) ([]int, error) { return []int{prod(in)}, nil }

func (f *Flatten) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return in.Reshape(in.Len()), nil
}

func (f *Flatten) ParamCount() int64    { return 0 }
func (f *Flatten) FLOPs(in []int) int64 { return 0 }
