package nn

// Batch-of-N forward entry for the cross-query inference scheduler.
//
// The scheduler (internal/schedule) coalesces pending forward passes from
// concurrent queries into one call; this file makes that call cheaper than
// N independent Forwards by executing batch-aware layers as ONE large
// MatMul over the stacked batch instead of N small ones. Layers without a
// batched kernel fall back to a per-sample loop, so ForwardBatch accepts
// every model Forward accepts.
//
// Determinism contract: ForwardBatch is bit-identical to calling Forward
// per sample. The batched kernels guarantee this by construction — each
// output element is computed from exactly the same operands accumulated in
// exactly the same order as its per-sample counterpart (the batch only
// widens the MatMul's second operand; rows of the weight matrix and the
// ascending-k accumulation order are unchanged). The scheduler-on vs
// scheduler-off differential suite in internal/bench pins this end to end.

import (
	"fmt"
	"time"

	"repro/internal/qerr"
	"repro/internal/tensor"
)

// BatchLayer is implemented by layers with a genuinely batched forward
// kernel. ForwardBatch must be bit-identical to per-sample Forward calls
// and must not mutate the inputs.
type BatchLayer interface {
	Layer
	ForwardBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error)
}

// ForwardBatch runs the full chain over a batch of inputs, using each
// layer's batched kernel when it has one (Conv2D, Linear) and a per-sample
// loop otherwise. Results are bit-identical to calling Forward once per
// input. Panics inside layer kernels are recovered and returned as typed
// qerr.ErrInternal, mirroring Forward.
func (m *Model) ForwardBatch(ins []*tensor.Tensor) (outs []*tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			outs, err = nil, qerr.Recovered("nn model "+m.ModelName, r)
		}
	}()
	cur := append([]*tensor.Tensor(nil), ins...)
	// Chained clock readings, as in Forward: one read per layer boundary.
	var now time.Time
	if m.Trace != nil {
		now = time.Now()
	}
	for _, l := range m.Layers {
		sp := m.Trace.StartChildAt(l.Kind()+":"+l.Name()+":batch", now)
		cur, err = forwardBatchLayer(l, cur)
		if sp != nil {
			now = time.Now()
			sp.FinishAt(now)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: model %s layer %s: %w", m.ModelName, l.Name(), err)
		}
	}
	return cur, nil
}

// forwardBatchLayer applies one layer to the whole batch.
func forwardBatchLayer(l Layer, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if bl, ok := l.(BatchLayer); ok && len(ins) > 1 && sameShapes(ins) {
		return bl.ForwardBatch(ins)
	}
	outs := make([]*tensor.Tensor, len(ins))
	for i, in := range ins {
		out, err := l.Forward(in)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// PredictBatch runs batched inference and returns the argmax class index
// per input, in input order.
func (m *Model) PredictBatch(ins []*tensor.Tensor) ([]int, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	outs, err := m.ForwardBatch(ins)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(outs))
	for i, out := range outs {
		idxs[i] = out.ArgMax()
	}
	return idxs, nil
}

// sameShapes reports whether every input has the first input's shape (the
// precondition for stacking a batch into one MatMul operand).
func sameShapes(ins []*tensor.Tensor) bool {
	if len(ins) == 0 {
		return false
	}
	first := ins[0].Shape()
	for _, in := range ins[1:] {
		s := in.Shape()
		if len(s) != len(first) {
			return false
		}
		for i := range s {
			if s[i] != first[i] {
				return false
			}
		}
	}
	return true
}

// ForwardBatch implements BatchLayer for Conv2D: the per-sample im2col
// matrices are stacked side by side and convolved with the weight matrix
// in ONE MatMul of shape (outC × inC·k²)·(inC·k² × N·oh·ow) — N times
// wider than the per-sample multiply, same rows, same accumulation order,
// so each sample's slice of the product is bit-identical to its Forward.
func (c *Conv2D) ForwardBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	out, err := c.OutShape(ins[0].Shape())
	if err != nil {
		return nil, err
	}
	oh, ow := out[1], out[2]
	ohw := oh * ow
	n := len(ins)
	k2 := c.Weight.Dim(1) // inC·k·k
	// stacked[kk][s·ohw + p] = im2col(sample s)[p][kk]
	stacked := tensor.New(k2, n*ohw)
	sd := stacked.Data()
	for s, in := range ins {
		cols, err := tensor.Im2Col(in, c.K, c.Stride, c.Pad) // (ohw × k2)
		if err != nil {
			return nil, err
		}
		cd := cols.Data()
		for p := 0; p < ohw; p++ {
			base := p * k2
			for kk := 0; kk < k2; kk++ {
				sd[kk*n*ohw+s*ohw+p] = cd[base+kk]
			}
		}
	}
	res, err := tensor.MatMul(c.Weight, stacked) // (outC × N·ohw)
	if err != nil {
		return nil, err
	}
	rd := res.Data()
	outs := make([]*tensor.Tensor, n)
	for s := 0; s < n; s++ {
		o := tensor.New(c.OutC, oh, ow)
		od := o.Data()
		for ch := 0; ch < c.OutC; ch++ {
			row := rd[ch*n*ohw+s*ohw : ch*n*ohw+(s+1)*ohw]
			dst := od[ch*ohw : (ch+1)*ohw]
			if c.Bias != nil {
				b := c.Bias[ch]
				for i, v := range row {
					dst[i] = v + b
				}
			} else {
				copy(dst, row)
			}
		}
		outs[s] = o
	}
	return outs, nil
}

// ForwardBatch implements BatchLayer for Linear: the batch's input vectors
// become the columns of one (In × N) matrix, multiplied by the weight
// matrix in ONE MatMul — per-sample MatVec dot products widen into a
// batched MatMul with identical operands and accumulation order.
func (l *Linear) ForwardBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if _, err := l.OutShape(ins[0].Shape()); err != nil {
		return nil, err
	}
	n := len(ins)
	xt := tensor.New(l.In, n)
	xd := xt.Data()
	for s, in := range ins {
		d := in.Data()
		for k := 0; k < l.In; k++ {
			xd[k*n+s] = d[k]
		}
	}
	res, err := tensor.MatMul(l.Weight, xt) // (Out × N)
	if err != nil {
		return nil, err
	}
	rd := res.Data()
	outs := make([]*tensor.Tensor, n)
	for s := 0; s < n; s++ {
		y := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			y[o] = rd[o*n+s] + l.Bias[o]
		}
		outs[s] = tensor.FromSlice(y, l.Out)
	}
	return outs, nil
}
