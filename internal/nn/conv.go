package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW tensors with square kernels, the
// workhorse operator of the paper's CNN workloads. Weights are stored
// [outC][inC][k][k]; inference lowers the input with im2col and multiplies
// against the flattened weight matrix.
type Conv2D struct {
	LayerName string
	InC, OutC int
	K         int // square kernel side
	Stride    int
	Pad       int
	Weight    *tensor.Tensor // shape [OutC, InC*K*K]
	Bias      []float64      // len OutC, may be nil
}

// NewConv2D builds a convolution with deterministically initialized weights.
// The init is a seeded pseudo-He scheme: reproducible across runs so that the
// SQL-translated model and the native model share identical parameters.
func NewConv2D(name string, inC, outC, k, stride, pad int, seed int64) *Conv2D {
	c := &Conv2D{
		LayerName: name,
		InC:       inC, OutC: outC,
		K: k, Stride: stride, Pad: pad,
		Weight: tensor.New(outC, inC*k*k),
		Bias:   make([]float64, outC),
	}
	scale := math.Sqrt(2.0 / float64(inC*k*k))
	rng := newSplitMix(seed)
	for i := range c.Weight.Data() {
		c.Weight.Data()[i] = (rng.float() - 0.5) * 2 * scale
	}
	for i := range c.Bias {
		c.Bias[i] = (rng.float() - 0.5) * 0.1
	}
	return c
}

func (c *Conv2D) Name() string { return c.LayerName }
func (c *Conv2D) Kind() string { return KindConv2D }

func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.InC {
		return nil, shapeErr(c.LayerName, fmt.Sprintf("CHW with C=%d", c.InC), in)
	}
	oh := tensor.ConvOutDim(in[1], c.K, c.Stride, c.Pad)
	ow := tensor.ConvOutDim(in[2], c.K, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv %s output collapses on input %v", c.LayerName, in)
	}
	return []int{c.OutC, oh, ow}, nil
}

func (c *Conv2D) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := c.OutShape(in.Shape())
	if err != nil {
		return nil, err
	}
	oh, ow := out[1], out[2]
	cols, err := tensor.Im2Col(in, c.K, c.Stride, c.Pad) // (oh*ow) x (inC*k*k)
	if err != nil {
		return nil, err
	}
	colsT, err := tensor.Transpose(cols) // (inC*k*k) x (oh*ow)
	if err != nil {
		return nil, err
	}
	// outC x (oh*ow); MatMul fans its rows — the output channels — across
	// the shared worker pool for large layers.
	res, err := tensor.MatMul(c.Weight, colsT)
	if err != nil {
		return nil, err
	}
	if c.Bias != nil {
		d := res.Data()
		for ch := 0; ch < c.OutC; ch++ {
			b := c.Bias[ch]
			row := d[ch*oh*ow : (ch+1)*oh*ow]
			for i := range row {
				row[i] += b
			}
		}
	}
	return res.Reshape(c.OutC, oh, ow), nil
}

func (c *Conv2D) ParamCount() int64 {
	n := int64(c.Weight.Len())
	if c.Bias != nil {
		n += int64(len(c.Bias))
	}
	return n
}

func (c *Conv2D) FLOPs(in []int) int64 {
	out, err := c.OutShape(in)
	if err != nil {
		return 0
	}
	// Each output element: inC*k*k multiply-adds.
	return int64(out[1]) * int64(out[2]) * int64(c.OutC) * int64(c.InC*c.K*c.K) * 2
}

// KernelRow returns the flattened kernel weights feeding output channel ch,
// in the same (channel-major, then row-major) order Im2Col and the DL2SQL
// Kernel table use.
func (c *Conv2D) KernelRow(ch int) []float64 {
	w := c.Weight.Data()
	n := c.InC * c.K * c.K
	return w[ch*n : (ch+1)*n]
}

// Deconv2D is a transposed convolution (fractionally-strided). It upsamples
// a CHW tensor; output side = (in-1)*stride - 2*pad + k.
type Deconv2D struct {
	LayerName string
	InC, OutC int
	K         int
	Stride    int
	Pad       int
	Weight    *tensor.Tensor // [InC, OutC*K*K]
	Bias      []float64
}

// NewDeconv2D builds a transposed convolution with seeded init.
func NewDeconv2D(name string, inC, outC, k, stride, pad int, seed int64) *Deconv2D {
	d := &Deconv2D{
		LayerName: name,
		InC:       inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: tensor.New(inC, outC*k*k),
		Bias:   make([]float64, outC),
	}
	scale := math.Sqrt(2.0 / float64(inC*k*k))
	rng := newSplitMix(seed)
	for i := range d.Weight.Data() {
		d.Weight.Data()[i] = (rng.float() - 0.5) * 2 * scale
	}
	return d
}

func (d *Deconv2D) Name() string { return d.LayerName }
func (d *Deconv2D) Kind() string { return KindDeconv2D }

func (d *Deconv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != d.InC {
		return nil, shapeErr(d.LayerName, fmt.Sprintf("CHW with C=%d", d.InC), in)
	}
	oh := (in[1]-1)*d.Stride - 2*d.Pad + d.K
	ow := (in[2]-1)*d.Stride - 2*d.Pad + d.K
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: deconv %s output collapses on input %v", d.LayerName, in)
	}
	return []int{d.OutC, oh, ow}, nil
}

func (d *Deconv2D) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	outShape, err := d.OutShape(in.Shape())
	if err != nil {
		return nil, err
	}
	h, w := in.Dim(1), in.Dim(2)
	oh, ow := outShape[1], outShape[2]
	// Scatter-add each input pixel's contribution into the padded output.
	padOH, padOW := oh+2*d.Pad, ow+2*d.Pad
	acc := tensor.New(d.OutC, padOH, padOW)
	wdat := d.Weight.Data()
	for ic := 0; ic < d.InC; ic++ {
		wrow := wdat[ic*d.OutC*d.K*d.K : (ic+1)*d.OutC*d.K*d.K]
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := in.At(ic, y, x)
				if v == 0 {
					continue
				}
				oy0, ox0 := y*d.Stride, x*d.Stride
				for oc := 0; oc < d.OutC; oc++ {
					kbase := oc * d.K * d.K
					abase := oc * padOH * padOW
					for ky := 0; ky < d.K; ky++ {
						arow := abase + (oy0+ky)*padOW + ox0
						krow := kbase + ky*d.K
						for kx := 0; kx < d.K; kx++ {
							acc.Data()[arow+kx] += v * wrow[krow+kx]
						}
					}
				}
			}
		}
	}
	out := tensor.New(d.OutC, oh, ow)
	for oc := 0; oc < d.OutC; oc++ {
		b := 0.0
		if d.Bias != nil {
			b = d.Bias[oc]
		}
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				out.Set(acc.At(oc, y+d.Pad, x+d.Pad)+b, oc, y, x)
			}
		}
	}
	return out, nil
}

func (d *Deconv2D) ParamCount() int64 {
	n := int64(d.Weight.Len())
	if d.Bias != nil {
		n += int64(len(d.Bias))
	}
	return n
}

func (d *Deconv2D) FLOPs(in []int) int64 {
	if len(in) != 3 {
		return 0
	}
	return int64(in[1]) * int64(in[2]) * int64(d.InC) * int64(d.OutC*d.K*d.K) * 2
}

// splitMix is a tiny deterministic PRNG (SplitMix64) used for reproducible
// weight init without importing math/rand's global state.
type splitMix struct{ state uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{state: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitMix) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}
