package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Binary model format — the repo's stand-in for a TorchScript artifact. The
// loose-integration strategy "compiles" a model by serializing it with
// Encode and links the resulting bytes into the database as a UDF; the
// independent strategy ships the same artifact to the serving component.
//
// Layout: magic, format version, model name, input shape, class labels,
// then a tagged record per layer. All integers are varint-free fixed-width
// little-endian for a predictable artifact size (Table IV measures it).

const modelMagic = "DL2SQLM1"

type modelWriter struct {
	w   *bufio.Writer
	err error
}

func (mw *modelWriter) u32(v uint32) {
	if mw.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, mw.err = mw.w.Write(b[:])
}

func (mw *modelWriter) u64(v uint64) {
	if mw.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, mw.err = mw.w.Write(b[:])
}

func (mw *modelWriter) f64(v float64) { mw.u64(math.Float64bits(v)) }
func (mw *modelWriter) f64s(v []float64) {
	mw.u32(uint32(len(v)))
	for _, x := range v {
		mw.f64(x)
	}
}

func (mw *modelWriter) str(s string) {
	mw.u32(uint32(len(s)))
	if mw.err != nil {
		return
	}
	_, mw.err = mw.w.WriteString(s)
}

func (mw *modelWriter) ints(v []int) {
	mw.u32(uint32(len(v)))
	for _, x := range v {
		mw.u64(uint64(x))
	}
}

type modelReader struct {
	r   *bufio.Reader
	err error
}

func (mr *modelReader) u32() uint32 {
	if mr.err != nil {
		return 0
	}
	var b [4]byte
	_, mr.err = io.ReadFull(mr.r, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (mr *modelReader) u64() uint64 {
	if mr.err != nil {
		return 0
	}
	var b [8]byte
	_, mr.err = io.ReadFull(mr.r, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (mr *modelReader) f64() float64 { return math.Float64frombits(mr.u64()) }

func (mr *modelReader) f64s() []float64 {
	n := mr.u32()
	if mr.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = mr.f64()
	}
	return out
}

func (mr *modelReader) str() string {
	n := mr.u32()
	if mr.err != nil {
		return ""
	}
	b := make([]byte, n)
	_, mr.err = io.ReadFull(mr.r, b)
	return string(b)
}

func (mr *modelReader) ints() []int {
	n := mr.u32()
	if mr.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(mr.u64())
	}
	return out
}

// Encode serializes the model to w.
func Encode(m *Model, w io.Writer) error {
	mw := &modelWriter{w: bufio.NewWriter(w)}
	if _, err := mw.w.WriteString(modelMagic); err != nil {
		return err
	}
	mw.str(m.ModelName)
	mw.ints(m.InputShape)
	mw.u32(uint32(len(m.Classes)))
	for _, c := range m.Classes {
		mw.str(c)
	}
	mw.u32(uint32(len(m.Layers)))
	for _, l := range m.Layers {
		encodeLayer(mw, l)
	}
	if mw.err != nil {
		return mw.err
	}
	return mw.w.Flush()
}

// EncodeBytes serializes the model to a byte slice — the "compiled binary
// artifact" the DB-UDF strategy links into the database kernel.
func EncodeBytes(m *Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(m, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeLayer(mw *modelWriter, l Layer) {
	mw.str(l.Kind())
	mw.str(l.Name())
	switch t := l.(type) {
	case *Conv2D:
		mw.ints([]int{t.InC, t.OutC, t.K, t.Stride, t.Pad})
		mw.f64s(t.Weight.Data())
		mw.f64s(t.Bias)
	case *Deconv2D:
		mw.ints([]int{t.InC, t.OutC, t.K, t.Stride, t.Pad})
		mw.f64s(t.Weight.Data())
		mw.f64s(t.Bias)
	case *BatchNorm:
		mw.u32(uint32(t.C))
		if t.UseBatchStats {
			mw.u32(1)
		} else {
			mw.u32(0)
		}
		mw.f64s(t.Gamma)
		mw.f64s(t.Beta)
		mw.f64s(t.Mean)
		mw.f64s(t.Var)
	case *InstanceNorm:
		mw.u32(uint32(t.C))
		mw.f64s(t.Gamma)
		mw.f64s(t.Beta)
	case *ReLU, *Sigmoid, *Softmax, *Flatten, *GlobalAvgPool:
		// kind + name suffice
	case *MaxPool:
		mw.ints([]int{t.K, t.Stride})
	case *AvgPool:
		mw.ints([]int{t.K, t.Stride})
	case *Linear:
		mw.ints([]int{t.In, t.Out})
		mw.f64s(t.Weight.Data())
		mw.f64s(t.Bias)
	case *BasicAttention:
		mw.u32(uint32(t.Dim))
		mw.f64s(t.WScore.Data())
		mw.f64s(t.WValue.Data())
	case *ResidualBlock:
		mw.u32(uint32(len(t.Main)))
		for _, sub := range t.Main {
			encodeLayer(mw, sub)
		}
		mw.u32(uint32(len(t.Shortcut)))
		for _, sub := range t.Shortcut {
			encodeLayer(mw, sub)
		}
	case *DenseBlock:
		mw.ints([]int{t.InC, t.Growth})
		mw.u32(uint32(len(t.Stages)))
		for _, sub := range t.Stages {
			encodeLayer(mw, sub)
		}
	default:
		if mw.err == nil {
			mw.err = fmt.Errorf("nn: cannot encode layer kind %q", l.Kind())
		}
	}
}

// Decode deserializes a model previously written by Encode.
func Decode(r io.Reader) (*Model, error) {
	mr := &modelReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(mr.r, magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("nn: bad magic %q", magic)
	}
	m := &Model{ModelName: mr.str(), InputShape: mr.ints()}
	nc := mr.u32()
	for i := uint32(0); i < nc && mr.err == nil; i++ {
		m.Classes = append(m.Classes, mr.str())
	}
	nl := mr.u32()
	for i := uint32(0); i < nl && mr.err == nil; i++ {
		l, err := decodeLayer(mr)
		if err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
	}
	if mr.err != nil {
		return nil, mr.err
	}
	return m, nil
}

// DecodeBytes deserializes a model from a compiled artifact.
func DecodeBytes(b []byte) (*Model, error) {
	return Decode(bytes.NewReader(b))
}

func decodeLayer(mr *modelReader) (Layer, error) {
	kind := mr.str()
	name := mr.str()
	if mr.err != nil {
		return nil, mr.err
	}
	switch kind {
	case KindConv2D:
		dims := mr.ints()
		w := mr.f64s()
		b := mr.f64s()
		if mr.err != nil {
			return nil, mr.err
		}
		if len(dims) != 5 {
			return nil, fmt.Errorf("nn: conv %s header corrupt", name)
		}
		c := &Conv2D{LayerName: name, InC: dims[0], OutC: dims[1], K: dims[2], Stride: dims[3], Pad: dims[4], Bias: b}
		c.Weight = tensor.FromSlice(w, c.OutC, c.InC*c.K*c.K)
		return c, nil
	case KindDeconv2D:
		dims := mr.ints()
		w := mr.f64s()
		b := mr.f64s()
		if mr.err != nil {
			return nil, mr.err
		}
		if len(dims) != 5 {
			return nil, fmt.Errorf("nn: deconv %s header corrupt", name)
		}
		d := &Deconv2D{LayerName: name, InC: dims[0], OutC: dims[1], K: dims[2], Stride: dims[3], Pad: dims[4], Bias: b}
		d.Weight = tensor.FromSlice(w, d.InC, d.OutC*d.K*d.K)
		return d, nil
	case KindBatchNorm:
		c := int(mr.u32())
		batchStats := mr.u32() == 1
		return &BatchNorm{
			LayerName: name, C: c, UseBatchStats: batchStats,
			Gamma: mr.f64s(), Beta: mr.f64s(), Mean: mr.f64s(), Var: mr.f64s(),
		}, mr.err
	case KindInstanceNorm:
		c := int(mr.u32())
		return &InstanceNorm{LayerName: name, C: c, Gamma: mr.f64s(), Beta: mr.f64s()}, mr.err
	case KindReLU:
		return &ReLU{LayerName: name}, nil
	case KindSigmoid:
		return &Sigmoid{LayerName: name}, nil
	case KindSoftmax:
		return &Softmax{LayerName: name}, nil
	case KindFlatten:
		return &Flatten{LayerName: name}, nil
	case KindGlobalAvg:
		return &GlobalAvgPool{LayerName: name}, nil
	case KindMaxPool:
		dims := mr.ints()
		if len(dims) != 2 {
			return nil, fmt.Errorf("nn: maxpool %s header corrupt", name)
		}
		return &MaxPool{LayerName: name, K: dims[0], Stride: dims[1]}, nil
	case KindAvgPool:
		dims := mr.ints()
		if len(dims) != 2 {
			return nil, fmt.Errorf("nn: avgpool %s header corrupt", name)
		}
		return &AvgPool{LayerName: name, K: dims[0], Stride: dims[1]}, nil
	case KindLinear:
		dims := mr.ints()
		w := mr.f64s()
		b := mr.f64s()
		if mr.err != nil {
			return nil, mr.err
		}
		if len(dims) != 2 {
			return nil, fmt.Errorf("nn: linear %s header corrupt", name)
		}
		l := &Linear{LayerName: name, In: dims[0], Out: dims[1], Bias: b}
		l.Weight = tensor.FromSlice(w, l.Out, l.In)
		return l, nil
	case KindAttention:
		dim := int(mr.u32())
		ws := mr.f64s()
		wv := mr.f64s()
		if mr.err != nil {
			return nil, mr.err
		}
		return &BasicAttention{
			LayerName: name, Dim: dim,
			WScore: tensor.FromSlice(ws, dim, dim),
			WValue: tensor.FromSlice(wv, dim, dim),
		}, nil
	case KindResidual, KindIdentity:
		b := &ResidualBlock{LayerName: name}
		nm := mr.u32()
		for i := uint32(0); i < nm && mr.err == nil; i++ {
			sub, err := decodeLayer(mr)
			if err != nil {
				return nil, err
			}
			b.Main = append(b.Main, sub)
		}
		ns := mr.u32()
		for i := uint32(0); i < ns && mr.err == nil; i++ {
			sub, err := decodeLayer(mr)
			if err != nil {
				return nil, err
			}
			b.Shortcut = append(b.Shortcut, sub)
		}
		return b, mr.err
	case KindDense:
		dims := mr.ints()
		if len(dims) != 2 {
			return nil, fmt.Errorf("nn: dense block %s header corrupt", name)
		}
		b := &DenseBlock{LayerName: name, InC: dims[0], Growth: dims[1]}
		ns := mr.u32()
		for i := uint32(0); i < ns && mr.err == nil; i++ {
			sub, err := decodeLayer(mr)
			if err != nil {
				return nil, err
			}
			conv, ok := sub.(*Conv2D)
			if !ok {
				return nil, fmt.Errorf("nn: dense block %s stage is %T, want conv", name, sub)
			}
			b.Stages = append(b.Stages, conv)
		}
		return b, mr.err
	default:
		return nil, fmt.Errorf("nn: unknown layer kind %q", kind)
	}
}
