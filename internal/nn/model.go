package nn

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/tensor"
)

// Model is a frozen inference network: an ordered chain of layers plus the
// class labels its softmax head predicts. Residual topology lives inside
// block layers, so the top-level chain is sequential.
type Model struct {
	ModelName  string
	InputShape []int
	Layers     []Layer
	Classes    []string

	// Trace, when non-nil, receives one child span per layer executed by
	// Forward — the per-operator breakdown of Fig. 10 as a span tree. It is
	// runtime-only state and is not serialized with the model. A nil Trace
	// keeps Forward on its uninstrumented fast path.
	Trace *obs.Span
}

// NewModel creates an empty model for the given input shape.
func NewModel(name string, inputShape []int, classes []string) *Model {
	return &Model{
		ModelName:  name,
		InputShape: append([]int(nil), inputShape...),
		Classes:    append([]string(nil), classes...),
	}
}

// Add appends layers to the chain and returns the model for chaining.
func (m *Model) Add(layers ...Layer) *Model {
	m.Layers = append(m.Layers, layers...)
	return m
}

// Validate checks that every layer's input shape matches its predecessor's
// output shape, and returns the model's final output shape.
func (m *Model) Validate() ([]int, error) {
	cur := m.InputShape
	for _, l := range m.Layers {
		next, err := l.OutShape(cur)
		if err != nil {
			return nil, fmt.Errorf("nn: model %s: %w", m.ModelName, err)
		}
		cur = next
	}
	return cur, nil
}

// Forward runs the full chain on one input tensor. A panic inside a layer
// kernel (shape mismatch, out-of-range index from a corrupt artifact) is
// recovered and returned as a typed qerr.ErrInternal instead of crossing
// goroutine boundaries and killing the process.
func (m *Model) Forward(in *tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, qerr.Recovered("nn model "+m.ModelName, r)
		}
	}()
	cur := in
	// Layer spans share clock readings: each layer's end read is the next
	// layer's start, so a traced forward pass pays one read per layer
	// boundary instead of two per layer.
	var now time.Time
	if m.Trace != nil {
		now = time.Now()
	}
	for _, l := range m.Layers {
		sp := m.Trace.StartChildAt(l.Kind()+":"+l.Name(), now)
		cur, err = l.Forward(cur)
		if sp != nil {
			now = time.Now()
			sp.FinishAt(now)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: model %s layer %s: %w", m.ModelName, l.Name(), err)
		}
	}
	return cur, nil
}

// Predict runs inference and returns the argmax class index and its
// probability. The model must end in a softmax (or any layer producing a
// score vector).
func (m *Model) Predict(in *tensor.Tensor) (int, float64, error) {
	out, err := m.Forward(in)
	if err != nil {
		return 0, 0, err
	}
	idx := out.ArgMax()
	return idx, out.Data()[idx], nil
}

// PredictClass returns the class label of the argmax prediction.
func (m *Model) PredictClass(in *tensor.Tensor) (string, error) {
	idx, _, err := m.Predict(in)
	if err != nil {
		return "", err
	}
	if idx < len(m.Classes) {
		return m.Classes[idx], nil
	}
	return fmt.Sprintf("class_%d", idx), nil
}

// ParamCount totals learned parameters across all layers.
func (m *Model) ParamCount() int64 {
	n := int64(0)
	for _, l := range m.Layers {
		n += l.ParamCount()
	}
	return n
}

// FLOPs totals per-layer FLOP estimates for one forward pass.
func (m *Model) FLOPs() int64 {
	n := int64(0)
	cur := m.InputShape
	for _, l := range m.Layers {
		n += l.FLOPs(cur)
		if next, err := l.OutShape(cur); err == nil {
			cur = next
		}
	}
	return n
}

// LayerShapes returns, for each layer, its input shape during a forward pass
// starting from the model's input shape.
func (m *Model) LayerShapes() ([][]int, error) {
	shapes := make([][]int, 0, len(m.Layers)+1)
	cur := m.InputShape
	shapes = append(shapes, cur)
	for _, l := range m.Layers {
		next, err := l.OutShape(cur)
		if err != nil {
			return nil, err
		}
		shapes = append(shapes, next)
		cur = next
	}
	return shapes, nil
}
