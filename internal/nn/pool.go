package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MaxPool is a k×k max pooling with stride s over CHW tensors. DL2SQL
// rewrites it as Q3: GROUP BY MatrixID with a MAX aggregate over the pooling
// windows enumerated by the same mapping machinery as convolution.
type MaxPool struct {
	LayerName string
	K, Stride int
}

func (p *MaxPool) Name() string { return p.LayerName }
func (p *MaxPool) Kind() string { return KindMaxPool }

func (p *MaxPool) OutShape(in []int) ([]int, error) {
	return poolOutShape(p.LayerName, in, p.K, p.Stride)
}

func (p *MaxPool) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return poolForward(in, p.K, p.Stride, p.LayerName, func(window []float64) float64 {
		m := math.Inf(-1)
		for _, v := range window {
			if v > m {
				m = v
			}
		}
		return m
	})
}

func (p *MaxPool) ParamCount() int64 { return 0 }

func (p *MaxPool) FLOPs(in []int) int64 {
	out, err := p.OutShape(in)
	if err != nil {
		return 0
	}
	return int64(prod(out)) * int64(p.K*p.K)
}

// AvgPool is k×k average pooling with stride s; the SQL rewrite swaps Q3's
// MAX aggregate for AVG.
type AvgPool struct {
	LayerName string
	K, Stride int
}

func (p *AvgPool) Name() string { return p.LayerName }
func (p *AvgPool) Kind() string { return KindAvgPool }

func (p *AvgPool) OutShape(in []int) ([]int, error) {
	return poolOutShape(p.LayerName, in, p.K, p.Stride)
}

func (p *AvgPool) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return poolForward(in, p.K, p.Stride, p.LayerName, func(window []float64) float64 {
		s := 0.0
		for _, v := range window {
			s += v
		}
		return s / float64(len(window))
	})
}

func (p *AvgPool) ParamCount() int64 { return 0 }

func (p *AvgPool) FLOPs(in []int) int64 {
	out, err := p.OutShape(in)
	if err != nil {
		return 0
	}
	return int64(prod(out)) * int64(p.K*p.K)
}

// GlobalAvgPool collapses each channel of a CHW tensor to its mean,
// producing a length-C vector; ResNet variants use it before the classifier.
type GlobalAvgPool struct{ LayerName string }

func (p *GlobalAvgPool) Name() string { return p.LayerName }
func (p *GlobalAvgPool) Kind() string { return KindGlobalAvg }

func (p *GlobalAvgPool) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(p.LayerName, "CHW", in)
	}
	return []int{in[0]}, nil
}

func (p *GlobalAvgPool) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := p.OutShape(in.Shape()); err != nil {
		return nil, err
	}
	c, n := in.Dim(0), in.Dim(1)*in.Dim(2)
	out := tensor.New(c)
	for ch := 0; ch < c; ch++ {
		s := 0.0
		for _, v := range in.Data()[ch*n : (ch+1)*n] {
			s += v
		}
		out.Data()[ch] = s / float64(n)
	}
	return out, nil
}

func (p *GlobalAvgPool) ParamCount() int64    { return 0 }
func (p *GlobalAvgPool) FLOPs(in []int) int64 { return int64(prod(in)) }

func poolOutShape(name string, in []int, k, stride int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(name, "CHW", in)
	}
	oh := tensor.ConvOutDim(in[1], k, stride, 0)
	ow := tensor.ConvOutDim(in[2], k, stride, 0)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: pool %s output collapses on input %v", name, in)
	}
	return []int{in[0], oh, ow}, nil
}

func poolForward(in *tensor.Tensor, k, stride int, name string, agg func([]float64) float64) (*tensor.Tensor, error) {
	shape, err := poolOutShape(name, in.Shape(), k, stride)
	if err != nil {
		return nil, err
	}
	c, oh, ow := shape[0], shape[1], shape[2]
	out := tensor.New(c, oh, ow)
	window := make([]float64, 0, k*k)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				window = window[:0]
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						window = append(window, in.At(ch, oy*stride+ky, ox*stride+kx))
					}
				}
				out.Set(agg(window), ch, oy, ox)
			}
		}
	}
	return out, nil
}
