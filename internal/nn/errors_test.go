package nn

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// Error-path coverage: every layer must reject malformed inputs with a
// descriptive error instead of panicking or silently mis-computing.

func TestPoolRejectsTooSmallInput(t *testing.T) {
	p := &MaxPool{LayerName: "p", K: 4, Stride: 4}
	if _, err := p.Forward(tensor.New(1, 2, 2)); err == nil {
		t.Fatal("pool larger than input must fail")
	}
	a := &AvgPool{LayerName: "a", K: 4, Stride: 4}
	if _, err := a.Forward(tensor.New(1, 2, 2)); err == nil {
		t.Fatal("avg pool larger than input must fail")
	}
}

func TestPoolRejectsWrongRank(t *testing.T) {
	p := &MaxPool{LayerName: "p", K: 2, Stride: 2}
	if _, err := p.Forward(tensor.New(4, 4)); err == nil {
		t.Fatal("rank-2 input must fail")
	}
	g := &GlobalAvgPool{LayerName: "g"}
	if _, err := g.Forward(tensor.New(16)); err == nil {
		t.Fatal("rank-1 input must fail for GAP")
	}
}

func TestBatchNormChannelMismatch(t *testing.T) {
	bn := NewBatchNorm("bn", 4)
	if _, err := bn.Forward(tensor.New(2, 3, 3)); err == nil {
		t.Fatal("channel mismatch must fail")
	}
	in := NewInstanceNorm("in", 4)
	if _, err := in.Forward(tensor.New(2, 3, 3)); err == nil {
		t.Fatal("instance norm channel mismatch must fail")
	}
}

func TestLinearSizeMismatch(t *testing.T) {
	l := NewLinear("fc", 8, 2, 1)
	if _, err := l.Forward(tensor.New(7)); err == nil {
		t.Fatal("feature-count mismatch must fail")
	}
}

func TestAttentionSizeMismatch(t *testing.T) {
	a := NewBasicAttention("att", 4, 1)
	if _, err := a.Forward(tensor.New(5)); err == nil {
		t.Fatal("attention dim mismatch must fail")
	}
}

func TestDeconvChannelMismatch(t *testing.T) {
	d := NewDeconv2D("d", 3, 2, 2, 2, 0, 1)
	if _, err := d.Forward(tensor.New(1, 3, 3)); err == nil {
		t.Fatal("deconv channel mismatch must fail")
	}
}

func TestDenseBlockChannelMismatch(t *testing.T) {
	b := NewDenseBlock("db", 3, 2, 2, 1)
	if _, err := b.Forward(tensor.New(2, 4, 4)); err == nil {
		t.Fatal("dense block channel mismatch must fail")
	}
}

func TestResidualBlockPathMismatch(t *testing.T) {
	// Shortcut producing a different shape than main must be rejected at
	// OutShape time.
	b := NewResidualBlock("rb", 2, 4, 2, 1)
	b.Shortcut = nil // identity shortcut keeps 2ch while main makes 4ch
	if _, err := b.OutShape([]int{2, 6, 6}); err == nil {
		t.Fatal("mismatched residual paths must fail")
	}
}

func TestModelErrorMentionsLayer(t *testing.T) {
	m := NewModel("m", []int{1, 4, 4}, nil)
	m.Add(NewConv2D("myconv", 2, 1, 3, 1, 0, 1)) // wrong channels
	_, err := m.Forward(tensor.New(1, 4, 4))
	if err == nil || !strings.Contains(err.Error(), "myconv") {
		t.Fatalf("error should name the failing layer: %v", err)
	}
}

func TestConvOutputCollapse(t *testing.T) {
	c := NewConv2D("c", 1, 1, 5, 1, 0, 1)
	if _, err := c.OutShape([]int{1, 3, 3}); err == nil {
		t.Fatal("kernel larger than input must fail")
	}
}

func TestFLOPsZeroOnBadShape(t *testing.T) {
	c := NewConv2D("c", 1, 1, 5, 1, 0, 1)
	if got := c.FLOPs([]int{1, 3, 3}); got != 0 {
		t.Fatalf("FLOPs on invalid shape = %d, want 0", got)
	}
}

func TestEmptySoftmax(t *testing.T) {
	s := &Softmax{LayerName: "s"}
	out, err := s.Forward(tensor.New(0))
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty softmax: %v %v", out, err)
	}
}
