package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestConv2DPaperExample(t *testing.T) {
	// 5x5 input, one 3x3 kernel of all ones, stride 2, no padding:
	// outputs are the sums of the four sub-matrices.
	in := tensor.New(1, 5, 5)
	for i := range in.Data() {
		in.Data()[i] = 1
	}
	conv := NewConv2D("c", 1, 1, 3, 2, 0, 1)
	conv.Weight.Fill(1)
	conv.Bias = nil
	out, err := conv.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 1 || out.Dim(1) != 2 || out.Dim(2) != 2 {
		t.Fatalf("shape %v, want [1 2 2]", out.Shape())
	}
	for _, v := range out.Data() {
		if v != 9 {
			t.Fatalf("each 3x3 sum should be 9, got %v", out.Data())
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	in := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	conv := NewConv2D("c", 1, 1, 2, 1, 0, 1)
	copy(conv.Weight.Data(), []float64{1, 0, 0, 1}) // identity-ish: top-left + bottom-right
	conv.Bias = []float64{10}
	out, err := conv.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1 + 5 + 10, 2 + 6 + 10, 4 + 8 + 10, 5 + 9 + 10}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	in := tensor.New(2, 4, 4)
	for i := range in.Data() {
		in.Data()[i] = float64(i)
	}
	conv := NewConv2D("c", 2, 3, 3, 1, 1, 7)
	out, err := conv.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 3 || out.Dim(1) != 4 || out.Dim(2) != 4 {
		t.Fatalf("shape %v", out.Shape())
	}
}

func TestConv2DWrongChannels(t *testing.T) {
	conv := NewConv2D("c", 3, 1, 3, 1, 0, 1)
	if _, err := conv.Forward(tensor.New(1, 5, 5)); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestConvParamAndFLOPs(t *testing.T) {
	conv := NewConv2D("c", 3, 16, 3, 1, 1, 1)
	if got := conv.ParamCount(); got != 3*16*9+16 {
		t.Fatalf("ParamCount = %d", got)
	}
	fl := conv.FLOPs([]int{3, 8, 8})
	if fl != int64(8*8*16)*int64(3*9)*2 {
		t.Fatalf("FLOPs = %d", fl)
	}
}

func TestDeconvInvertsDownsampleShape(t *testing.T) {
	d := NewDeconv2D("d", 4, 2, 2, 2, 0, 3)
	out, err := d.Forward(tensor.New(4, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 2 || out.Dim(1) != 10 || out.Dim(2) != 10 {
		t.Fatalf("shape %v, want [2 10 10]", out.Shape())
	}
}

func TestDeconvKnownValue(t *testing.T) {
	// Single input pixel scattered through a 2x2 kernel.
	d := &Deconv2D{LayerName: "d", InC: 1, OutC: 1, K: 2, Stride: 1, Pad: 0,
		Weight: tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)}
	in := tensor.FromSlice([]float64{5}, 1, 1, 1)
	out, err := d.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 10, 15, 20}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("out = %v, want %v", out.Data(), want)
		}
	}
}

func TestBatchNormBatchStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	in := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	out, err := bn.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// mean 2.5, stddevSamp = sqrt(5/3); paper formula: (x-mean)/(std+eps)
	std := math.Sqrt(5.0 / 3.0)
	for i, x := range []float64{1, 2, 3, 4} {
		want := (x - 2.5) / (std + BNEpsilon)
		if math.Abs(out.Data()[i]-want) > 1e-12 {
			t.Fatalf("bn[%d] = %v, want %v", i, out.Data()[i], want)
		}
	}
}

func TestBatchNormRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.UseBatchStats = false
	bn.Mean[0] = 1
	bn.Var[0] = 4
	in := tensor.FromSlice([]float64{5}, 1, 1, 1)
	out, err := bn.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := (5.0 - 1.0) / math.Sqrt(4+BNEpsilon)
	if math.Abs(out.Data()[0]-want) > 1e-12 {
		t.Fatalf("bn = %v, want %v", out.Data()[0], want)
	}
}

func TestBatchNormPerChannel(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	in := tensor.FromSlice([]float64{1, 1, 1, 1, 10, 20, 30, 40}, 2, 2, 2)
	out, err := bn.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 is constant → normalized to 0 (std=0, denominator=eps).
	for i := 0; i < 4; i++ {
		if out.Data()[i] != 0 {
			t.Fatalf("constant channel should normalize to 0, got %v", out.Data()[:4])
		}
	}
	// Channel 1 mean must be ~0 after normalization.
	s := out.Data()[4] + out.Data()[5] + out.Data()[6] + out.Data()[7]
	if math.Abs(s) > 1e-9 {
		t.Fatalf("normalized channel mean should be 0, sum = %v", s)
	}
}

func TestInstanceNormMatchesBatchStatBN(t *testing.T) {
	in := tensor.FromSlice([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 2, 2, 2)
	a, err := NewInstanceNorm("in", 2).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatchNorm("bn", 2).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(a, b, 1e-12) {
		t.Fatal("instance norm must equal batch-stat batch norm on one sample")
	}
}

func TestReLU(t *testing.T) {
	out, err := (&ReLU{LayerName: "r"}).Forward(tensor.FromSlice([]float64{-1, 0, 2}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 0 || out.Data()[1] != 0 || out.Data()[2] != 2 {
		t.Fatalf("relu = %v", out.Data())
	}
}

func TestSigmoid(t *testing.T) {
	out, err := (&Sigmoid{LayerName: "s"}).Forward(tensor.FromSlice([]float64{0}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Data()[0]-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", out.Data()[0])
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	out, err := (&Softmax{LayerName: "s"}).Forward(tensor.FromSlice([]float64{1, 2, 3}, 3))
	if err != nil {
		t.Fatal(err)
	}
	s := 0.0
	for _, v := range out.Data() {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", s)
	}
	if !(out.Data()[2] > out.Data()[1] && out.Data()[1] > out.Data()[0]) {
		t.Fatal("softmax must be monotone in logits")
	}
}

func TestSoftmaxLargeLogitsStable(t *testing.T) {
	out, err := (&Softmax{LayerName: "s"}).Forward(tensor.FromSlice([]float64{1000, 1001}, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax unstable: %v", out.Data())
		}
	}
}

func TestMaxPool(t *testing.T) {
	in := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, err := (&MaxPool{LayerName: "p", K: 2, Stride: 2}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("maxpool = %v, want %v", out.Data(), want)
		}
	}
}

func TestAvgPool(t *testing.T) {
	in := tensor.FromSlice([]float64{1, 3, 5, 7}, 1, 2, 2)
	out, err := (&AvgPool{LayerName: "p", K: 2, Stride: 2}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 4 {
		t.Fatalf("avgpool = %v, want 4", out.Data()[0])
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 2, 2, 2)
	out, err := (&GlobalAvgPool{LayerName: "g"}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 2 || out.Data()[0] != 2.5 || out.Data()[1] != 25 {
		t.Fatalf("gap = %v", out.Data())
	}
}

func TestLinear(t *testing.T) {
	l := &Linear{LayerName: "fc", In: 2, Out: 2,
		Weight: tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2),
		Bias:   []float64{0.5, -0.5}}
	out, err := l.Forward(tensor.FromSlice([]float64{1, 1}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 3.5 || out.Data()[1] != 6.5 {
		t.Fatalf("linear = %v", out.Data())
	}
}

func TestLinearAcceptsAnyShapeWithRightSize(t *testing.T) {
	l := NewLinear("fc", 8, 3, 1)
	if _, err := l.Forward(tensor.New(2, 2, 2)); err != nil {
		t.Fatalf("linear should flatten-compatible input: %v", err)
	}
	if _, err := l.Forward(tensor.New(9)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestBasicAttention(t *testing.T) {
	a := NewBasicAttention("att", 4, 11)
	out, err := a.Forward(tensor.FromSlice([]float64{1, 2, 3, 4}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 4 {
		t.Fatalf("attention out shape %v", out.Shape())
	}
	if a.ParamCount() != 32 {
		t.Fatalf("attention params = %d", a.ParamCount())
	}
}

func TestResidualBlockShapes(t *testing.T) {
	b := NewResidualBlock("rb", 4, 8, 2, 5)
	out, err := b.Forward(tensor.New(4, 8, 8).Fill(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 8 || out.Dim(1) != 4 || out.Dim(2) != 4 {
		t.Fatalf("residual shape %v", out.Shape())
	}
	// Final ReLU: no negative values.
	for _, v := range out.Data() {
		if v < 0 {
			t.Fatal("residual block output must be non-negative after ReLU")
		}
	}
}

func TestIdentityResidualBlock(t *testing.T) {
	b := NewIdentityResidualBlock("ib", 4, 5)
	if b.Kind() != KindIdentity {
		t.Fatalf("kind = %s", b.Kind())
	}
	out, err := b.Forward(tensor.New(4, 6, 6).Fill(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 4 || out.Dim(1) != 6 {
		t.Fatalf("identity block shape %v", out.Shape())
	}
}

func TestDenseBlockConcat(t *testing.T) {
	b := NewDenseBlock("db", 3, 4, 2, 9)
	out, err := b.Forward(tensor.New(3, 5, 5).Fill(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 3+2*4 {
		t.Fatalf("dense block channels = %d, want 11", out.Dim(0))
	}
	// The first 3 channels must be the untouched input.
	for i := 0; i < 3*25; i++ {
		if out.Data()[i] != 1 {
			t.Fatal("dense block must preserve input channels")
		}
	}
}

func TestModelValidateAndForward(t *testing.T) {
	m := NewModel("tiny", []int{1, 6, 6}, []string{"a", "b"})
	m.Add(
		NewConv2D("c1", 1, 2, 3, 1, 0, 1),
		NewBatchNorm("bn1", 2),
		&ReLU{LayerName: "r1"},
		&MaxPool{LayerName: "p1", K: 2, Stride: 2},
		&Flatten{LayerName: "f"},
		NewLinear("fc", 2*2*2, 2, 2),
		&Softmax{LayerName: "sm"},
	)
	shape, err := m.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 1 || shape[0] != 2 {
		t.Fatalf("output shape %v", shape)
	}
	idx, p, err := m.Predict(tensor.New(1, 6, 6).Fill(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx > 1 || p <= 0 || p > 1 {
		t.Fatalf("predict = %d %v", idx, p)
	}
	cls, err := m.PredictClass(tensor.New(1, 6, 6).Fill(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if cls != "a" && cls != "b" {
		t.Fatalf("class = %q", cls)
	}
}

func TestModelValidateCatchesMismatch(t *testing.T) {
	m := NewModel("bad", []int{1, 6, 6}, nil)
	m.Add(NewConv2D("c1", 3, 2, 3, 1, 0, 1)) // expects 3 channels, gets 1
	if _, err := m.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestModelLayerShapes(t *testing.T) {
	m := NewModel("m", []int{1, 5, 5}, nil)
	m.Add(NewConv2D("c1", 1, 2, 3, 2, 0, 1))
	shapes, err := m.LayerShapes()
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 2 || shapes[1][0] != 2 || shapes[1][1] != 2 {
		t.Fatalf("shapes = %v", shapes)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := NewModel("roundtrip", []int{3, 8, 8}, []string{"x", "y", "z"})
	m.Add(
		NewConv2D("c1", 3, 4, 3, 1, 1, 1),
		NewBatchNorm("bn1", 4),
		&ReLU{LayerName: "r1"},
		&MaxPool{LayerName: "p1", K: 2, Stride: 2},
		NewResidualBlock("rb1", 4, 8, 2, 2),
		NewDenseBlock("db1", 8, 2, 2, 3),
		&GlobalAvgPool{LayerName: "gap"},
		NewLinear("fc", 12, 3, 4),
		NewBasicAttention("att", 3, 5),
		&Softmax{LayerName: "sm"},
	)
	if _, err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeBytes(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ModelName != "roundtrip" || len(m2.Classes) != 3 || len(m2.Layers) != len(m.Layers) {
		t.Fatalf("decoded model mismatch: %s %v %d", m2.ModelName, m2.Classes, len(m2.Layers))
	}
	if m2.ParamCount() != m.ParamCount() {
		t.Fatalf("param count changed: %d vs %d", m2.ParamCount(), m.ParamCount())
	}
	in := tensor.New(3, 8, 8)
	for i := range in.Data() {
		in.Data()[i] = float64(i%13) / 13
	}
	a, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(a, b, 0) {
		t.Fatal("decoded model must be bit-identical in inference")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := DecodeBytes([]byte("NOTAMODEL___")); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := NewModel("t", []int{1, 4, 4}, nil)
	m.Add(NewConv2D("c", 1, 1, 3, 1, 0, 1))
	blob, err := EncodeBytes(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBytes(blob[:len(blob)/2]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewConv2D("c", 2, 2, 3, 1, 0, 42)
	b := NewConv2D("c", 2, 2, 3, 1, 0, 42)
	if !tensor.Equal(a.Weight, b.Weight, 0) {
		t.Fatal("same seed must give same weights")
	}
	c := NewConv2D("c", 2, 2, 3, 1, 0, 43)
	if tensor.Equal(a.Weight, c.Weight, 0) {
		t.Fatal("different seed must give different weights")
	}
}

// Property: conv with a delta kernel (1 at a fixed position, 0 elsewhere)
// is a shifted copy — here we use position 0 of a k=1 kernel so output
// equals input exactly.
func TestConv1x1IdentityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		side := int(seed%4) + 2
		in := tensor.New(1, side, side)
		rng := newSplitMix(int64(seed) + 1)
		for i := range in.Data() {
			in.Data()[i] = rng.float()
		}
		conv := &Conv2D{LayerName: "id", InC: 1, OutC: 1, K: 1, Stride: 1, Pad: 0,
			Weight: tensor.FromSlice([]float64{1}, 1, 1)}
		out, err := conv.Forward(in)
		if err != nil {
			return false
		}
		return tensor.Equal(out, in, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU is idempotent.
func TestReLUIdempotentProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				xs[i] = 0
			}
		}
		in := tensor.FromSlice(xs, len(xs))
		r := &ReLU{LayerName: "r"}
		once, err := r.Forward(in)
		if err != nil {
			return false
		}
		twice, err := r.Forward(once)
		if err != nil {
			return false
		}
		return tensor.Equal(once, twice, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FC as 1x1-conv equivalence, the identity the paper exploits —
// a Linear over C features equals a 1x1 Conv2D over a Cx1x1 tensor with the
// same weights.
func TestLinearConvEquivalenceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		inC := int(seed%4) + 1
		outC := int(seed/4%4) + 1
		lin := NewLinear("fc", inC, outC, int64(seed)+1)
		conv := &Conv2D{LayerName: "c", InC: inC, OutC: outC, K: 1, Stride: 1, Pad: 0,
			Weight: lin.Weight.Clone().Reshape(outC, inC), Bias: lin.Bias}
		x := make([]float64, inC)
		rng := newSplitMix(int64(seed) + 99)
		for i := range x {
			x[i] = rng.float()*2 - 1
		}
		a, err := lin.Forward(tensor.FromSlice(x, inC))
		if err != nil {
			return false
		}
		xs := make([]float64, inC)
		copy(xs, x)
		b, err := conv.Forward(tensor.FromSlice(xs, inC, 1, 1))
		if err != nil {
			return false
		}
		return tensor.Equal(a, b.Reshape(outC), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelFLOPsPositive(t *testing.T) {
	m := NewModel("m", []int{1, 8, 8}, nil)
	m.Add(NewConv2D("c1", 1, 4, 3, 1, 1, 1), &ReLU{LayerName: "r"})
	if m.FLOPs() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
	if m.ParamCount() != int64(4*9+4) {
		t.Fatalf("ParamCount = %d", m.ParamCount())
	}
}
