package nn

import (
	"math"

	"repro/internal/tensor"
)

// BNEpsilon matches the constant the paper's Q4 adds to the denominator
// (0.00005) to avoid division by zero.
const BNEpsilon = 0.00005

// BatchNorm normalizes each channel of a CHW tensor. Two modes are
// supported:
//
//   - running-stat mode (UseBatchStats=false): the conventional frozen
//     inference form using trained Mean/Var, x̂ = γ(x-μ)/√(σ²+ε) + β.
//   - batch-stat mode (UseBatchStats=true): the form the paper's SQL
//     rewrite (Q4) actually computes — per-channel AVG and stddevSamp over
//     the current feature map, x̂ = γ(x-avg)/(stddevSamp+ε) + β. DL2SQL
//     equivalence tests run in this mode so both paths compute the same
//     arithmetic.
type BatchNorm struct {
	LayerName     string
	C             int
	Gamma, Beta   []float64
	Mean, Var     []float64
	UseBatchStats bool
}

// NewBatchNorm creates an identity-initialized batch norm (γ=1, β=0) in
// batch-stat mode, matching the paper's SQL implementation.
func NewBatchNorm(name string, c int) *BatchNorm {
	bn := &BatchNorm{
		LayerName: name, C: c,
		Gamma: make([]float64, c), Beta: make([]float64, c),
		Mean: make([]float64, c), Var: make([]float64, c),
		UseBatchStats: true,
	}
	for i := range bn.Gamma {
		bn.Gamma[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

func (b *BatchNorm) Name() string { return b.LayerName }
func (b *BatchNorm) Kind() string { return KindBatchNorm }

func (b *BatchNorm) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.C {
		return nil, shapeErr(b.LayerName, "CHW matching channel count", in)
	}
	return in, nil
}

func (b *BatchNorm) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := b.OutShape(in.Shape()); err != nil {
		return nil, err
	}
	h, w := in.Dim(1), in.Dim(2)
	out := tensor.New(b.C, h, w)
	n := h * w
	for c := 0; c < b.C; c++ {
		src := in.Data()[c*n : (c+1)*n]
		dst := out.Data()[c*n : (c+1)*n]
		var shift, scale float64
		if b.UseBatchStats {
			mean := 0.0
			for _, v := range src {
				mean += v
			}
			mean /= float64(n)
			ss := 0.0
			for _, v := range src {
				d := v - mean
				ss += d * d
			}
			std := 0.0
			if n > 1 {
				std = math.Sqrt(ss / float64(n-1)) // sample stddev = SQL stddevSamp
			}
			shift = mean
			scale = 1 / (std + BNEpsilon)
		} else {
			shift = b.Mean[c]
			scale = 1 / math.Sqrt(b.Var[c]+BNEpsilon)
		}
		g, be := b.Gamma[c], b.Beta[c]
		for i, v := range src {
			dst[i] = g*(v-shift)*scale + be
		}
	}
	return out, nil
}

func (b *BatchNorm) ParamCount() int64 { return int64(2 * b.C) }

func (b *BatchNorm) FLOPs(in []int) int64 {
	return int64(prod(in)) * 4 // subtract, scale, gamma, beta
}

// InstanceNorm normalizes each channel independently using the current
// sample's statistics, always — it is BatchNorm's batch-stat mode without
// learned running statistics. The paper lists it as a supported
// normalization variant in Table II.
type InstanceNorm struct {
	LayerName   string
	C           int
	Gamma, Beta []float64
}

// NewInstanceNorm creates an identity-initialized instance norm.
func NewInstanceNorm(name string, c int) *InstanceNorm {
	in := &InstanceNorm{LayerName: name, C: c, Gamma: make([]float64, c), Beta: make([]float64, c)}
	for i := range in.Gamma {
		in.Gamma[i] = 1
	}
	return in
}

func (l *InstanceNorm) Name() string { return l.LayerName }
func (l *InstanceNorm) Kind() string { return KindInstanceNorm }

func (l *InstanceNorm) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != l.C {
		return nil, shapeErr(l.LayerName, "CHW matching channel count", in)
	}
	return in, nil
}

func (l *InstanceNorm) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	bn := &BatchNorm{LayerName: l.LayerName, C: l.C, Gamma: l.Gamma, Beta: l.Beta, UseBatchStats: true}
	return bn.Forward(in)
}

func (l *InstanceNorm) ParamCount() int64 { return int64(2 * l.C) }

func (l *InstanceNorm) FLOPs(in []int) int64 { return int64(prod(in)) * 4 }
