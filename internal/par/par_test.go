package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ degree, n, morsel int }{
		{1, 100, 7},
		{4, 100, 7},
		{4, 1, 10},
		{8, 1000, 1},
		{3, 10, 100}, // single morsel: inline
	} {
		hits := make([]int32, tc.n)
		stats := Run(tc.degree, tc.n, tc.morsel, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("degree=%d n=%d morsel=%d: index %d visited %d times", tc.degree, tc.n, tc.morsel, i, h)
			}
		}
		total := 0
		for _, v := range stats.WorkerItems {
			total += v
		}
		if total != tc.n {
			t.Fatalf("stats items %d != n %d", total, tc.n)
		}
		wantMorsels := (tc.n + tc.morsel - 1) / tc.morsel
		if stats.Morsels != wantMorsels {
			t.Fatalf("morsels %d, want %d", stats.Morsels, wantMorsels)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	stats := Run(4, 0, 16, func(w, lo, hi int) { called = true })
	if called || stats.Workers != 0 {
		t.Fatalf("empty run executed work: %+v", stats)
	}
}

func TestRunErrReturnsLowestMorselError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := RunErr(4, 100, 10, func(w, lo, hi int) error {
		switch lo {
		case 20:
			return errLow
		case 70:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("got %v, want the lowest-morsel error", err)
	}
	if _, err := RunErr(4, 100, 10, func(w, lo, hi int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestSkew(t *testing.T) {
	s := Stats{Workers: 2, WorkerItems: []int{75, 25}}
	if got := s.Skew(); got != 1.5 {
		t.Fatalf("skew = %v, want 1.5", got)
	}
	if (Stats{}).Skew() != 0 {
		t.Fatalf("empty skew should be 0")
	}
}

func TestSetDefaultDegree(t *testing.T) {
	old := DefaultDegree()
	defer SetDefaultDegree(old)
	SetDefaultDegree(7)
	if DefaultDegree() != 7 {
		t.Fatalf("degree = %d", DefaultDegree())
	}
	SetDefaultDegree(0)
	if DefaultDegree() != 1 {
		t.Fatalf("degree should clamp to 1, got %d", DefaultDegree())
	}
}

func TestOccupancy(t *testing.T) {
	before := Occupancy()
	Run(4, 10_000, 100, func(w, lo, hi int) {})
	after := Occupancy()
	if after.Runs != before.Runs+1 {
		t.Fatalf("runs %d -> %d, want +1", before.Runs, after.Runs)
	}
	if after.Morsels != before.Morsels+100 {
		t.Fatalf("morsels %d -> %d, want +100", before.Morsels, after.Morsels)
	}
	if after.ActiveWorkers != before.ActiveWorkers {
		t.Fatalf("active workers leaked: %d -> %d", before.ActiveWorkers, after.ActiveWorkers)
	}
	if after.DefaultDegree < 1 {
		t.Fatalf("default degree %d", after.DefaultDegree)
	}

	// Workers inside a run are visible while it executes.
	seen := make(chan int64, 1)
	Run(2, 2_000, 1_000, func(w, lo, hi int) {
		select {
		case seen <- Occupancy().ActiveWorkers:
		default:
		}
	})
	if got := <-seen; got < 1 {
		t.Fatalf("active workers during run = %d, want >= 1", got)
	}
}
