// Package par is the process-wide morsel-driven parallel execution layer
// shared by the SQL executor and the tensor kernels.
//
// Work over [0, n) is split into fixed-size row-range morsels; a pool of
// workers pulls morsels from a shared atomic counter until the range is
// drained (the classic morsel-driven scheduling of HyPer). Because morsels
// are contiguous, ascending ranges, callers that collect per-morsel outputs
// and concatenate them in morsel order reproduce the exact serial result —
// the property the sqldb executor relies on to keep parallel query results
// bit-identical to serial execution.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/qerr"
)

// defaultDegree is the process-wide default worker count, used when a
// caller does not carry its own parallelism knob (the tensor kernels, and
// sqldb.DB instances with Parallelism == 0).
var defaultDegree atomic.Int32

func init() { defaultDegree.Store(int32(runtime.NumCPU())) }

// SetDefaultDegree sets the process-wide default parallelism degree.
// Values below 1 are clamped to 1 (serial).
func SetDefaultDegree(n int) {
	if n < 1 {
		n = 1
	}
	defaultDegree.Store(int32(n))
}

// DefaultDegree returns the process-wide default parallelism degree
// (runtime.NumCPU() unless overridden).
func DefaultDegree() int { return int(defaultDegree.Load()) }

// Process-wide occupancy counters, maintained lock-free by every Run.
// They feed the sqldb `sys.runtime` system table, so the engine can report
// its own parallel-executor load relationally.
var (
	occActive  atomic.Int64
	occRuns    atomic.Int64
	occMorsels atomic.Int64
)

// PoolStats is a point-in-time view of the parallel layer's occupancy.
type PoolStats struct {
	// ActiveWorkers counts workers currently inside a Run (including each
	// run's calling goroutine). 0 when the executor is idle.
	ActiveWorkers int64
	// Runs counts Run invocations since process start.
	Runs int64
	// Morsels counts morsels dispatched since process start.
	Morsels int64
	// DefaultDegree is the process-wide default parallelism degree.
	DefaultDegree int
}

// Occupancy reports the current process-wide parallel-layer occupancy.
func Occupancy() PoolStats {
	return PoolStats{
		ActiveWorkers: occActive.Load(),
		Runs:          occRuns.Load(),
		Morsels:       occMorsels.Load(),
		DefaultDegree: DefaultDegree(),
	}
}

// Stats reports how one Run distributed its morsels, for skew diagnostics
// (EXPLAIN ANALYZE renders these per plan node).
type Stats struct {
	// Workers is the number of workers that participated.
	Workers int
	// Morsels is the total number of morsels dispatched.
	Morsels int
	// WorkerItems[w] counts the items (rows) worker w processed.
	WorkerItems []int
}

// MaxItems returns the largest per-worker item count.
func (s Stats) MaxItems() int {
	max := 0
	for _, v := range s.WorkerItems {
		if v > max {
			max = v
		}
	}
	return max
}

// Skew is the ratio of the busiest worker's item count to the ideal even
// share; 1.0 means perfectly balanced. Returns 0 for empty runs.
func (s Stats) Skew() float64 {
	total := 0
	for _, v := range s.WorkerItems {
		total += v
	}
	if total == 0 || s.Workers == 0 {
		return 0
	}
	ideal := float64(total) / float64(s.Workers)
	return float64(s.MaxItems()) / ideal
}

// Run splits [0, n) into morsels of at most morsel items and fans them
// across up to degree workers (the calling goroutine acts as worker 0).
// fn is invoked as fn(worker, lo, hi) for each morsel and must be safe for
// concurrent invocation on disjoint ranges. With degree <= 1, or when only
// one morsel exists, everything runs inline on the caller.
//
// A panic inside fn on any worker is captured, the remaining morsels are
// drained without running, and the panic is re-raised on the calling
// goroutine once every worker has parked — so recover-at-boundary handlers
// in the caller see worker panics exactly like inline ones, and no worker
// goroutine is left running.
func Run(degree, n, morsel int, fn func(worker, lo, hi int)) Stats {
	return RunCtx(nil, degree, n, morsel, fn)
}

// RunCtx is Run with cooperative cancellation: before pulling each morsel,
// every worker checks ctx and drains cleanly (stops pulling, parks) once it
// is done, so cancellation is observed within one morsel boundary. It does
// not report the cancellation — pair it with a caller-side ctx check, or
// use RunErrCtx which surfaces the classified context error directly. A nil
// ctx disables the checks.
func RunCtx(ctx context.Context, degree, n, morsel int, fn func(worker, lo, hi int)) Stats {
	if n <= 0 {
		return Stats{}
	}
	if morsel < 1 {
		morsel = 1
	}
	morsels := (n + morsel - 1) / morsel
	occRuns.Add(1)
	occMorsels.Add(int64(morsels))
	workers := degree
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		// Serial path: still iterate morsel-by-morsel when a context is
		// present, so cancellation latency is one morsel here too.
		occActive.Add(1)
		defer occActive.Add(-1)
		if ctx == nil {
			fn(0, 0, n)
			return Stats{Workers: 1, Morsels: morsels, WorkerItems: []int{n}}
		}
		done := 0
		for lo := 0; lo < n; lo += morsel {
			if ctx.Err() != nil {
				break
			}
			hi := lo + morsel
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
			done += hi - lo
		}
		return Stats{Workers: 1, Morsels: morsels, WorkerItems: []int{done}}
	}
	stats := Stats{Workers: workers, Morsels: morsels, WorkerItems: make([]int, workers)}
	var next atomic.Int64
	var panicked atomic.Bool
	panicMorsel := make([]any, morsels)
	work := func(w int) {
		occActive.Add(1)
		defer occActive.Add(-1)
		for {
			if panicked.Load() || (ctx != nil && ctx.Err() != nil) {
				return
			}
			m := int(next.Add(1)) - 1
			if m >= morsels {
				return
			}
			lo := m * morsel
			hi := lo + morsel
			if hi > n {
				hi = n
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMorsel[m] = r
						panicked.Store(true)
					}
				}()
				fn(w, lo, hi)
			}()
			stats.WorkerItems[w] += hi - lo
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()
	if panicked.Load() {
		// Re-raise the lowest-morsel panic on the caller: the same failure
		// serial row-order execution would have hit first.
		for _, r := range panicMorsel {
			if r != nil {
				panic(r)
			}
		}
	}
	return stats
}

// RunErr is Run for morsel bodies that can fail. All morsels still execute
// (workers do not cancel mid-flight; morsels are small), and the error of
// the lowest-indexed failing morsel is returned — the same error serial
// row-order execution would have surfaced first, keeping error identity
// deterministic under parallelism.
func RunErr(degree, n, morsel int, fn func(worker, lo, hi int) error) (Stats, error) {
	return RunErrCtx(nil, degree, n, morsel, fn)
}

// RunErrCtx is RunErr with cooperative cancellation: workers check ctx
// before pulling each morsel and drain cleanly once it is done, so
// cancellation latency is bounded by one morsel. When the context is done
// it returns the classified lifecycle error (qerr.ErrCancelled or
// qerr.ErrTimeout) unless a completed morsel already failed — morsel-order
// error identity still wins, keeping errors deterministic. A nil ctx
// behaves exactly like RunErr.
func RunErrCtx(ctx context.Context, degree, n, morsel int, fn func(worker, lo, hi int) error) (Stats, error) {
	if n <= 0 {
		return Stats{}, nil
	}
	if morsel < 1 {
		morsel = 1
	}
	morsels := (n + morsel - 1) / morsel
	errs := make([]error, morsels)
	stats := RunCtx(ctx, degree, n, morsel, func(w, lo, hi int) {
		errs[lo/morsel] = fn(w, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	if ctx != nil {
		return stats, qerr.FromContext(ctx.Err())
	}
	return stats, nil
}
