// Package par is the process-wide morsel-driven parallel execution layer
// shared by the SQL executor and the tensor kernels.
//
// Work over [0, n) is split into fixed-size row-range morsels; a pool of
// workers pulls morsels from a shared atomic counter until the range is
// drained (the classic morsel-driven scheduling of HyPer). Because morsels
// are contiguous, ascending ranges, callers that collect per-morsel outputs
// and concatenate them in morsel order reproduce the exact serial result —
// the property the sqldb executor relies on to keep parallel query results
// bit-identical to serial execution.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultDegree is the process-wide default worker count, used when a
// caller does not carry its own parallelism knob (the tensor kernels, and
// sqldb.DB instances with Parallelism == 0).
var defaultDegree atomic.Int32

func init() { defaultDegree.Store(int32(runtime.NumCPU())) }

// SetDefaultDegree sets the process-wide default parallelism degree.
// Values below 1 are clamped to 1 (serial).
func SetDefaultDegree(n int) {
	if n < 1 {
		n = 1
	}
	defaultDegree.Store(int32(n))
}

// DefaultDegree returns the process-wide default parallelism degree
// (runtime.NumCPU() unless overridden).
func DefaultDegree() int { return int(defaultDegree.Load()) }

// Stats reports how one Run distributed its morsels, for skew diagnostics
// (EXPLAIN ANALYZE renders these per plan node).
type Stats struct {
	// Workers is the number of workers that participated.
	Workers int
	// Morsels is the total number of morsels dispatched.
	Morsels int
	// WorkerItems[w] counts the items (rows) worker w processed.
	WorkerItems []int
}

// MaxItems returns the largest per-worker item count.
func (s Stats) MaxItems() int {
	max := 0
	for _, v := range s.WorkerItems {
		if v > max {
			max = v
		}
	}
	return max
}

// Skew is the ratio of the busiest worker's item count to the ideal even
// share; 1.0 means perfectly balanced. Returns 0 for empty runs.
func (s Stats) Skew() float64 {
	total := 0
	for _, v := range s.WorkerItems {
		total += v
	}
	if total == 0 || s.Workers == 0 {
		return 0
	}
	ideal := float64(total) / float64(s.Workers)
	return float64(s.MaxItems()) / ideal
}

// Run splits [0, n) into morsels of at most morsel items and fans them
// across up to degree workers (the calling goroutine acts as worker 0).
// fn is invoked as fn(worker, lo, hi) for each morsel and must be safe for
// concurrent invocation on disjoint ranges. With degree <= 1, or when only
// one morsel exists, everything runs inline on the caller.
func Run(degree, n, morsel int, fn func(worker, lo, hi int)) Stats {
	if n <= 0 {
		return Stats{}
	}
	if morsel < 1 {
		morsel = 1
	}
	morsels := (n + morsel - 1) / morsel
	workers := degree
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		fn(0, 0, n)
		return Stats{Workers: 1, Morsels: morsels, WorkerItems: []int{n}}
	}
	stats := Stats{Workers: workers, Morsels: morsels, WorkerItems: make([]int, workers)}
	var next atomic.Int64
	work := func(w int) {
		for {
			m := int(next.Add(1)) - 1
			if m >= morsels {
				return
			}
			lo := m * morsel
			hi := lo + morsel
			if hi > n {
				hi = n
			}
			fn(w, lo, hi)
			stats.WorkerItems[w] += hi - lo
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()
	return stats
}

// RunErr is Run for morsel bodies that can fail. All morsels still execute
// (workers do not cancel mid-flight; morsels are small), and the error of
// the lowest-indexed failing morsel is returned — the same error serial
// row-order execution would have surfaced first, keeping error identity
// deterministic under parallelism.
func RunErr(degree, n, morsel int, fn func(worker, lo, hi int) error) (Stats, error) {
	if n <= 0 {
		return Stats{}, nil
	}
	if morsel < 1 {
		morsel = 1
	}
	morsels := (n + morsel - 1) / morsel
	errs := make([]error, morsels)
	stats := Run(degree, n, morsel, func(w, lo, hi int) {
		errs[lo/morsel] = fn(w, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}
