package modelrepo

import (
	"testing"

	"repro/internal/tensor"
)

func TestStudentModelStructure(t *testing.T) {
	m := NewStudentModel(TaskDefectDetection, 32, 1)
	out, err := m.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("student output shape %v, want [2]", out)
	}
	if len(m.Layers) != 12 {
		t.Fatalf("student layers = %d, want 12 (3 blocks + gap + fc + softmax)", len(m.Layers))
	}
}

func TestStudentModelPredicts(t *testing.T) {
	m := NewStudentModel(TaskPatternRecog, 16, 2)
	in := tensor.New(3, 16, 16)
	for i := range in.Data() {
		in.Data()[i] = float64(i%7) / 7
	}
	cls, err := m.PredictClass(in)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range ClassesFor(TaskPatternRecog) {
		if c == cls {
			found = true
		}
	}
	if !found {
		t.Fatalf("predicted class %q not in label set", cls)
	}
}

func TestResNetDepthFamily(t *testing.T) {
	var prev int64
	for depth := 5; depth <= 40; depth += 5 {
		m, err := NewResNet(depth, TaskDefectDetection, 32, 1)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		p := m.ParamCount()
		if p <= prev {
			t.Fatalf("params must grow with depth: depth %d has %d (prev %d)", depth, p, prev)
		}
		prev = p
	}
}

func TestResNetDepthIncrement(t *testing.T) {
	// Each +5 of depth adds a 256-ch 3x3 conv + BN:
	// 256*256*9 + 256 (bias) + 512 (bn) = 590,592 params — a fixed increment
	// matching the per-stage scaling in Table VI.
	m10, _ := NewResNet(10, TaskDefectDetection, 32, 1)
	m15, _ := NewResNet(15, TaskDefectDetection, 32, 1)
	m20, _ := NewResNet(20, TaskDefectDetection, 32, 1)
	d1 := m15.ParamCount() - m10.ParamCount()
	d2 := m20.ParamCount() - m15.ParamCount()
	if d1 != d2 {
		t.Fatalf("depth increments differ: %d vs %d", d1, d2)
	}
	if d1 != 256*256*9+256+512 {
		t.Fatalf("increment = %d, want 590592", d1)
	}
}

func TestResNetBadDepth(t *testing.T) {
	for _, d := range []int{0, 3, 7, 45} {
		if _, err := NewResNet(d, TaskDefectDetection, 32, 1); err == nil {
			t.Fatalf("depth %d should be rejected", d)
		}
	}
}

func TestResNetForward(t *testing.T) {
	m, err := NewResNet(5, TaskTextileType, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 16, 16).Fill(0.25)
	idx, p, err := m.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= 4 || p <= 0 || p > 1 {
		t.Fatalf("predict = %d %v", idx, p)
	}
}

func TestRepositoryHas20Models(t *testing.T) {
	repo := NewRepository(16, 42)
	if repo.Len() != 20 {
		t.Fatalf("repository size = %d, want 20", repo.Len())
	}
	perTask := map[Task]int{}
	for _, n := range repo.Names() {
		perTask[repo.Get(n).Task]++
	}
	for task, n := range perTask {
		if n != 5 {
			t.Fatalf("task %s has %d models, want 5", task, n)
		}
	}
}

func TestRepositoryForTask(t *testing.T) {
	repo := NewRepository(16, 42)
	e := repo.ForTask(TaskDefectDetection)
	if e == nil || e.Task != TaskDefectDetection {
		t.Fatal("ForTask failed")
	}
	if repo.Get("nosuch") != nil {
		t.Fatal("Get of missing model must be nil")
	}
}

func TestCalibrateBuildsHistogram(t *testing.T) {
	repo := NewRepository(16, 42)
	e := repo.ForTask(TaskClothesClass)
	if err := e.Calibrate(50, 16, 7); err != nil {
		t.Fatal(err)
	}
	if e.Histogram.Total != 50 {
		t.Fatalf("histogram total = %d", e.Histogram.Total)
	}
	sum := 0.0
	for i := range e.Histogram.Classes {
		p := e.Histogram.Pr(i)
		if p < 0 || p > 1 {
			t.Fatalf("Pr(%d) = %v out of range", i, p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v, want 1 (Eq. 9)", sum)
	}
}

func TestHistogramUniformFallback(t *testing.T) {
	h := NewClassHistogram([]string{"a", "b", "c", "d"})
	if h.Pr(0) != 0.25 {
		t.Fatalf("uniform fallback = %v", h.Pr(0))
	}
	h.Observe(1)
	h.Observe(1)
	h.Observe(2)
	if h.PrClass("b") != 2.0/3.0 {
		t.Fatalf("PrClass(b) = %v", h.PrClass("b"))
	}
	if h.PrClass("zzz") != 0 {
		t.Fatalf("unknown class Pr = %v", h.PrClass("zzz"))
	}
}

func TestClassesForAllTasks(t *testing.T) {
	if len(ClassesFor(TaskDefectDetection)) != 2 {
		t.Fatal("defect detection is binary")
	}
	if len(ClassesFor(TaskPatternRecog)) != 6 {
		t.Fatal("pattern recognition has 6 classes")
	}
	if len(ClassesFor(Task("unknown"))) != 2 {
		t.Fatal("unknown task must fall back to binary")
	}
}

func TestDeterministicRepository(t *testing.T) {
	a := NewRepository(16, 42)
	b := NewRepository(16, 42)
	ea, eb := a.ForTask(TaskDefectDetection), b.ForTask(TaskDefectDetection)
	if ea.Model.ParamCount() != eb.Model.ParamCount() {
		t.Fatal("repositories with same seed must match")
	}
	in := tensor.New(3, 16, 16).Fill(0.5)
	ia, _, _ := ea.Model.Predict(in)
	ib, _, _ := eb.Model.Predict(in)
	if ia != ib {
		t.Fatal("same-seed models must predict identically")
	}
}

func TestSaveLoadDir(t *testing.T) {
	repo := NewRepository(8, 77)
	e := repo.ForTask(TaskDefectDetection)
	if err := e.Calibrate(20, 8, 5); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := repo.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != repo.Len() {
		t.Fatalf("loaded %d models, want %d", loaded.Len(), repo.Len())
	}
	// Models are functionally identical.
	in := tensor.New(3, 8, 8).Fill(0.4)
	for _, name := range repo.Names() {
		a, _, err := repo.Get(name).Model.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := loaded.Get(name).Model.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("model %s predicts differently after reload", name)
		}
	}
	// Histogram survived.
	le := loaded.ForTask(TaskDefectDetection)
	if le.Histogram == nil || le.Histogram.Total != 20 {
		t.Fatalf("histogram lost: %+v", le.Histogram)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("missing manifest must fail")
	}
}
