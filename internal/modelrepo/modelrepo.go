// Package modelrepo builds and manages the neural models of the paper's
// evaluation: the distilled 3×(Conv+BN+ReLU) student model used in Fig. 8,
// the ResNet-5…ResNet-40 family of Table VI, and the repository of 20
// task-specific models (defect detection, clothes classification, textile
// type classification, pattern recognition) that collaborative queries pick
// from. It also maintains the per-class prediction histograms from which
// the hint machinery derives nUDF selectivities (Eqs. 9–10).
package modelrepo

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Task names the four task families of the paper's model repository.
type Task string

// The paper's four IoT analysis tasks.
const (
	TaskDefectDetection Task = "defect_detection"
	TaskClothesClass    Task = "clothes_classification"
	TaskTextileType     Task = "textile_type_classification"
	TaskPatternRecog    Task = "pattern_recognition"
)

// ClassesFor returns the output label set of a task.
func ClassesFor(task Task) []string {
	switch task {
	case TaskDefectDetection:
		return []string{"Not Found", "Defect"}
	case TaskClothesClass:
		return []string{"Shirt", "Dress", "Trousers", "Jacket", "Skirt"}
	case TaskTextileType:
		return []string{"Cotton", "Silk", "Wool", "Linen"}
	case TaskPatternRecog:
		return []string{"Floral Pattern", "Stripe Pattern", "Dot Pattern", "Plain", "Check Pattern", "Animal Print"}
	}
	return []string{"class_0", "class_1"}
}

// NewStudentModel builds the distilled model of the paper's Fig. 8/9: three
// Conv+BN+ReLU blocks (distilled from a ResNet34 teacher; the paper reports
// 87% vs. 93% accuracy), followed by global average pooling and a linear
// softmax classifier.
//
// inputSide is the square spatial size of the input (the paper uses 224;
// the experiments here default to a smaller side to keep bench runtimes
// sane — the cost *shape* is resolution-independent).
func NewStudentModel(task Task, inputSide int, seed int64) *nn.Model {
	classes := ClassesFor(task)
	m := nn.NewModel(fmt.Sprintf("student_%s", task), []int{3, inputSide, inputSide}, classes)
	m.Add(
		nn.NewConv2D("conv1", 3, 16, 3, 2, 1, seed),
		nn.NewBatchNorm("bn1", 16),
		&nn.ReLU{LayerName: "relu1"},
		nn.NewConv2D("conv2", 16, 32, 3, 2, 1, seed+1),
		nn.NewBatchNorm("bn2", 32),
		&nn.ReLU{LayerName: "relu2"},
		nn.NewConv2D("conv3", 32, 64, 3, 2, 1, seed+2),
		nn.NewBatchNorm("bn3", 64),
		&nn.ReLU{LayerName: "relu3"},
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 64, len(classes), seed+3),
		&nn.Softmax{LayerName: "softmax"},
	)
	return m
}

// NewResNet builds the ResNet-depth model used by Table IV/VI. Depth must
// be one of 5, 10, …, 40. The construction mirrors the paper's parameter
// scaling: a stem plus residual blocks, where each +5 of depth adds a
// 256-channel 3×3 conv stage (≈2.95 M parameters, matching the increments
// in Table VI).
func NewResNet(depth int, task Task, inputSide int, seed int64) (*nn.Model, error) {
	if depth < 5 || depth > 40 || depth%5 != 0 {
		return nil, fmt.Errorf("modelrepo: ResNet depth must be in {5,10,...,40}, got %d", depth)
	}
	classes := ClassesFor(task)
	m := nn.NewModel(fmt.Sprintf("resnet%d_%s", depth, task), []int{3, inputSide, inputSide}, classes)
	// Stem: conv + bn + relu + maxpool, then a residual block pair.
	m.Add(
		nn.NewConv2D("stem_conv", 3, 64, 3, 2, 1, seed),
		nn.NewBatchNorm("stem_bn", 64),
		&nn.ReLU{LayerName: "stem_relu"},
		&nn.MaxPool{LayerName: "stem_pool", K: 2, Stride: 2},
		nn.NewResidualBlock("rb1", 64, 128, 2, seed+1),
	)
	// Depth stages: each extra 5 of depth adds a 256-channel conv stage.
	stages := depth/5 - 1
	inC := 128
	for i := 0; i < stages; i++ {
		name := fmt.Sprintf("stage%d", i+1)
		m.Add(
			nn.NewConv2D(name+"_conv", inC, 256, 3, 1, 1, seed+int64(10+i)),
			nn.NewBatchNorm(name+"_bn", 256),
			&nn.ReLU{LayerName: name + "_relu"},
		)
		inC = 256
	}
	m.Add(
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", inC, len(classes), seed+99),
		&nn.Softmax{LayerName: "softmax"},
	)
	if _, err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Entry is one model in the repository with its selectivity histogram.
type Entry struct {
	Name      string
	Task      Task
	Model     *nn.Model
	Histogram *ClassHistogram
}

// Repository is the paper's model repository: 20 neural networks covering
// the four task families (trained offline; here constructed with
// deterministic seeded weights and calibrated histograms).
type Repository struct {
	entries map[string]*Entry
	order   []string
}

// NewRepository builds the 20-model repository over the given input
// resolution. Each task family contributes five parameter variants.
func NewRepository(inputSide int, seed int64) *Repository {
	repo := &Repository{entries: map[string]*Entry{}}
	tasks := []Task{TaskDefectDetection, TaskClothesClass, TaskTextileType, TaskPatternRecog}
	for ti, task := range tasks {
		for v := 0; v < 5; v++ {
			name := fmt.Sprintf("%s_v%d", task, v+1)
			s := seed + int64(ti*100+v*7)
			model := NewStudentModel(task, inputSide, s)
			model.ModelName = name
			repo.add(&Entry{Name: name, Task: task, Model: model})
		}
	}
	return repo
}

func (r *Repository) add(e *Entry) {
	r.entries[e.Name] = e
	r.order = append(r.order, e.Name)
}

// Get returns a repository entry by name, or nil.
func (r *Repository) Get(name string) *Entry { return r.entries[name] }

// Names lists all model names in insertion order.
func (r *Repository) Names() []string { return append([]string(nil), r.order...) }

// Len reports the number of models.
func (r *Repository) Len() int { return len(r.order) }

// ForTask returns the first model entry for a task, or nil.
func (r *Repository) ForTask(task Task) *Entry {
	for _, n := range r.order {
		if r.entries[n].Task == task {
			return r.entries[n]
		}
	}
	return nil
}

// Calibrate runs the model over n synthetic training-distribution samples
// and builds its class histogram, standing in for the offline-training
// histogram collection of Section IV-B.
func (e *Entry) Calibrate(n, inputSide int, seed int64) error {
	h := NewClassHistogram(e.Model.Classes)
	rng := newRand(seed)
	for i := 0; i < n; i++ {
		in := tensor.New(3, inputSide, inputSide)
		d := in.Data()
		for j := range d {
			d[j] = rng.float()
		}
		idx, _, err := e.Model.Predict(in)
		if err != nil {
			return fmt.Errorf("modelrepo: calibrating %s: %w", e.Name, err)
		}
		h.Observe(idx)
	}
	e.Histogram = h
	return nil
}

// ClassHistogram counts training-sample predictions per class, from which
// Pr(c_i) = H(c_i)/ΣH (Eq. 10) estimates the selectivity of an nUDF
// predicate testing for class c_i.
type ClassHistogram struct {
	Classes []string
	Counts  []int
	Total   int
}

// NewClassHistogram creates an empty histogram over the class labels.
func NewClassHistogram(classes []string) *ClassHistogram {
	return &ClassHistogram{Classes: append([]string(nil), classes...), Counts: make([]int, len(classes))}
}

// Observe records one predicted class index.
func (h *ClassHistogram) Observe(classIdx int) {
	if classIdx >= 0 && classIdx < len(h.Counts) {
		h.Counts[classIdx]++
		h.Total++
	}
}

// Pr returns the empirical probability of class index i (Eq. 10). With no
// observations it falls back to the uniform prior.
func (h *ClassHistogram) Pr(i int) float64 {
	if i < 0 || i >= len(h.Counts) {
		return 0
	}
	if h.Total == 0 {
		return 1.0 / float64(len(h.Counts))
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// PrClass returns the empirical probability of a class by label.
func (h *ClassHistogram) PrClass(label string) float64 {
	for i, c := range h.Classes {
		if c == label {
			return h.Pr(i)
		}
	}
	return 0
}

// newRand is a local deterministic PRNG so calibration does not depend on
// global math/rand state.
type splitMix struct{ state uint64 }

func newRand(seed int64) *splitMix { return &splitMix{state: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitMix) float() float64 { return float64(s.next()>>11) / float64(1<<53) }
