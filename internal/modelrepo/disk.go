package modelrepo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/nn"
)

// On-disk repository layout: the paper's models are "trained offline" on
// cloud servers and shipped to edge devices; this file gives the repository
// a deployable form — one binary artifact per model plus a JSON manifest
// carrying task assignments and calibration histograms.

// manifestEntry is the per-model metadata persisted alongside artifacts.
type manifestEntry struct {
	Name      string `json:"name"`
	Task      Task   `json:"task"`
	File      string `json:"file"`
	Classes   []string
	HistCount []int `json:"histogram,omitempty"`
}

// SaveDir writes every model (and its histogram, when calibrated) into dir.
func (r *Repository) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest []manifestEntry
	for _, name := range r.order {
		e := r.entries[name]
		file := sanitizeFilename(name) + ".model"
		f, err := os.Create(filepath.Join(dir, file))
		if err != nil {
			return err
		}
		if err := nn.Encode(e.Model, f); err != nil {
			f.Close()
			return fmt.Errorf("modelrepo: encoding %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		me := manifestEntry{Name: name, Task: e.Task, File: file, Classes: e.Model.Classes}
		if e.Histogram != nil {
			me.HistCount = append([]int(nil), e.Histogram.Counts...)
		}
		manifest = append(manifest, me)
	}
	blob, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644)
}

// LoadDir reads a repository previously written by SaveDir.
func LoadDir(dir string) (*Repository, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var manifest []manifestEntry
	if err := json.Unmarshal(blob, &manifest); err != nil {
		return nil, fmt.Errorf("modelrepo: parsing manifest: %w", err)
	}
	repo := &Repository{entries: map[string]*Entry{}}
	for _, me := range manifest {
		f, err := os.Open(filepath.Join(dir, me.File))
		if err != nil {
			return nil, err
		}
		model, err := nn.Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("modelrepo: decoding %s: %w", me.Name, err)
		}
		entry := &Entry{Name: me.Name, Task: me.Task, Model: model}
		if len(me.HistCount) > 0 {
			h := NewClassHistogram(model.Classes)
			for i, c := range me.HistCount {
				if i < len(h.Counts) {
					h.Counts[i] = c
					h.Total += c
				}
			}
			entry.Histogram = h
		}
		repo.add(entry)
	}
	return repo, nil
}

func sanitizeFilename(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		}
		return '_'
	}, name)
}
