package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/qerr"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Active(PointServingError) {
		t.Fatal("nil injector reports active point")
	}
	if err := in.Hit(context.Background(), PointServingError); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Bytes(PointMemPressure) != 0 || in.Fired(PointServingError) != 0 {
		t.Fatal("nil injector reports non-zero state")
	}
	if in.String() != "off" {
		t.Fatalf("nil injector String() = %q", in.String())
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7;morsel.delay:d=1ms,every=4;serving.error:p=0.5;mem.pressure:bytes=1048576"
	in, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	// String renders rules sorted by point with seed first.
	want := "seed=7;mem.pressure:bytes=1048576;morsel.delay:every=4,d=1ms;serving.error:p=0.5"
	if got := in.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// Re-parsing the rendering yields the same rendering (fixed point).
	in2, err := Parse(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if in2.String() != want {
		t.Fatalf("re-parse String() = %q, want %q", in2.String(), want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                     // no points
		"seed=2",               // seed only
		"serving.error:p=2",    // prob out of range
		"serving.error:p=x",    // bad float
		"serving.error:zap=1",  // unknown option
		"serving.error:noval",  // option without =
		":p=1",                 // empty point
		"seed=notanint;x.y",    // bad seed
		"morsel.delay:d=fast",  // bad duration
		"mem.pressure:bytes=x", // bad int
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestDefaultErrorIsServingUnavailable(t *testing.T) {
	in := New(1, Rule{Point: PointServingError})
	err := in.Hit(context.Background(), PointServingError)
	if !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("default firing error = %v, want ErrServingUnavailable", err)
	}
	if in.Fired(PointServingError) != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired(PointServingError))
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Rule{Point: PointUDFDecode, Err: boom})
	if err := in.Hit(context.Background(), PointUDFDecode); !errors.Is(err, boom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestEveryAfterCountGating(t *testing.T) {
	in := New(1, Rule{Point: PointServingError, Every: 3, After: 4, Count: 2})
	var fired []int
	for i := 1; i <= 15; i++ {
		if err := in.Hit(context.Background(), PointServingError); err != nil {
			fired = append(fired, i)
		}
	}
	// Armed from hit 4, fires on multiples of 3, capped at 2 firings: 6, 9.
	if len(fired) != 2 || fired[0] != 6 || fired[1] != 9 {
		t.Fatalf("fired on hits %v, want [6 9]", fired)
	}
}

func TestProbabilityIsDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed, Rule{Point: PointServingError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Hit(context.Background(), PointServingError) != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	var fires int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times; gating looks broken", fires, len(a))
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDelayInterruptibleByContext(t *testing.T) {
	in := New(1, Rule{Point: PointMorselDelay, Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Hit(ctx, PointMorselDelay)
	if !errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("interrupted delay returned %v, want ErrTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay was not interrupted by context")
	}
}

func TestHangDefaultsToLongDelay(t *testing.T) {
	// serving.hang with no d= must block until the context gives up, not
	// return an immediate error.
	in := New(1, Rule{Point: PointServingHang})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.Hit(ctx, PointServingHang) }()
	select {
	case err := <-done:
		t.Fatalf("hang returned immediately: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if err := <-done; !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("cancelled hang returned %v, want ErrCancelled", err)
	}
}

func TestBytesBudget(t *testing.T) {
	in := New(1, Rule{Point: PointMemPressure, Bytes: 4096})
	if got := in.Bytes(PointMemPressure); got != 4096 {
		t.Fatalf("Bytes = %d, want 4096", got)
	}
	// A pure bytes rule carries a budget; Hit must not synthesize an error.
	if err := in.Hit(context.Background(), PointMemPressure); err != nil {
		t.Fatalf("bytes-only rule fired an error: %v", err)
	}
	if got := in.Bytes(PointServingError); got != 0 {
		t.Fatalf("unarmed point Bytes = %d, want 0", got)
	}
}

func TestDelayOnlyRuleReturnsNilAfterSleeping(t *testing.T) {
	in := New(1, Rule{Point: PointMorselDelay, Delay: time.Millisecond})
	start := time.Now()
	if err := in.Hit(context.Background(), PointMorselDelay); err != nil {
		t.Fatalf("delay-only rule returned %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay-only rule did not sleep")
	}
}
