// Package faults is a deterministic, seedable fault-injection framework
// for exercising the query-lifecycle layer: serving-pipe errors, hangs and
// partial responses, slow-morsel delays in the SQL executor, and
// allocation-budget pressure.
//
// An *Injector holds a set of rules keyed by fault point (a dotted string
// such as "serving.error"). Production code asks the injector at each
// point via Hit; a nil injector is the production configuration and every
// method on it is a cheap no-op, so the disabled overhead is one nil check
// per point. Rules fire deterministically from a seeded PRNG plus per-point
// hit counters, so a given (seed, spec, workload) triple replays the same
// fault schedule.
//
// Rules are described either programmatically (New) or by a compact spec
// string (Parse) of the form
//
//	point[:opt,...][;point[:opt,...]]...
//
// with options p=<prob>, every=<n>, after=<n>, count=<n>, d=<duration>,
// bytes=<n>, and a pseudo-entry seed=<n> to set the PRNG seed. Examples:
//
//	serving.error:p=1                 every serving call fails
//	serving.hang:after=2              hang from the 2nd serving call on
//	morsel.delay:d=1ms,every=4        delay every 4th morsel by 1ms
//	mem.pressure:bytes=1048576        cap query materialization at 1 MiB
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/qerr"
)

// Canonical fault points wired into the engine and strategies.
const (
	// PointServingError fails the DB↔PyTorch serving pipe outright.
	PointServingError = "serving.error"
	// PointServingHang blocks the serving loop until the attempt's context
	// expires (default) or for an explicit d= duration.
	PointServingHang = "serving.hang"
	// PointServingPartial truncates the serving response stream mid-batch.
	PointServingPartial = "serving.partial"
	// PointUDFDecode fails the DB-UDF strategy's model decode step.
	PointUDFDecode = "udf.decode"
	// PointDL2SQLTranslate fails the DL2SQL translator pipeline.
	PointDL2SQLTranslate = "dl2sql.translate"
	// PointSchedSubmit fails an inference-scheduler submission before it
	// queues (the submitting query sees the error; nothing batches).
	PointSchedSubmit = "sched.submit"
	// PointSchedBatch fails a coalesced scheduler batch at execution time:
	// every waiter parked on that batch sees the same typed error.
	PointSchedBatch = "sched.batch"
	// PointMorselDelay delays SQL executor morsels (slow-query simulation).
	PointMorselDelay = "morsel.delay"
	// PointMemPressure imposes an artificial per-query materialization
	// budget of bytes= bytes on the SQL executor.
	PointMemPressure = "mem.pressure"
)

// hangDefault is how long a hang-class fault blocks when no explicit d= is
// given: effectively "until the attempt context gives up".
const hangDefault = time.Hour

// Rule describes when one fault point fires and what it does.
type Rule struct {
	// Point is the fault-point name the rule arms.
	Point string
	// Prob is the per-hit firing probability in (0, 1]; 0 means 1 (always).
	Prob float64
	// Every fires the rule on every Nth hit only (0/1 = every hit).
	Every int
	// After arms the rule from the Nth hit onward (0/1 = immediately).
	After int
	// Count caps the total number of firings (0 = unlimited).
	Count int
	// Delay, when non-zero, sleeps (context-interruptibly) when firing.
	Delay time.Duration
	// Bytes carries a byte budget for pressure-class points.
	Bytes int64
	// Err is returned when firing; nil error-class rules default to a
	// qerr.ErrServingUnavailable wrap naming the point.
	Err error
}

// ruleState is a Rule plus its runtime counters.
type ruleState struct {
	Rule
	hits  int64
	fired int64
}

// Injector evaluates fault rules at named points. The zero value of
// *Injector (nil) is the production no-op.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	seed  int64
	rules map[string]*ruleState
}

// New builds an injector with the given seed and rules.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed)), seed: seed, rules: map[string]*ruleState{}}
	for _, r := range rules {
		in.rules[r.Point] = &ruleState{Rule: r}
	}
	return in
}

// Parse builds an injector from a spec string (see package comment).
func Parse(spec string) (*Injector, error) {
	seed := int64(1)
	var rules []Rule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if v, ok := strings.CutPrefix(entry, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", v)
			}
			seed = n
			continue
		}
		point, opts, _ := strings.Cut(entry, ":")
		point = strings.TrimSpace(point)
		if point == "" {
			return nil, fmt.Errorf("faults: empty fault point in %q", entry)
		}
		r := Rule{Point: point}
		if opts != "" {
			for _, opt := range strings.Split(opts, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("faults: bad option %q in %q", opt, entry)
				}
				var err error
				switch k {
				case "p":
					r.Prob, err = strconv.ParseFloat(v, 64)
					if err == nil && (r.Prob < 0 || r.Prob > 1) {
						err = fmt.Errorf("out of range")
					}
				case "every":
					r.Every, err = strconv.Atoi(v)
				case "after":
					r.After, err = strconv.Atoi(v)
				case "count":
					r.Count, err = strconv.Atoi(v)
				case "d":
					r.Delay, err = time.ParseDuration(v)
				case "bytes":
					r.Bytes, err = strconv.ParseInt(v, 10, 64)
				default:
					err = fmt.Errorf("unknown option")
				}
				if err != nil {
					return nil, fmt.Errorf("faults: option %q in %q: %v", opt, entry, err)
				}
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q defines no fault points", spec)
	}
	return New(seed, rules...), nil
}

// Active reports whether a rule is registered for the point. Callers on hot
// paths use it (or a plain nil check on the injector) to skip per-row work.
func (in *Injector) Active(point string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rules[point] != nil
}

// Hit evaluates the point: it counts the hit, decides whether the rule
// fires (after/every/prob/count gating, seeded PRNG), applies the rule's
// delay (interruptible by ctx), and returns the rule's error when firing.
// A nil injector, unknown point, or non-firing hit returns nil.
func (in *Injector) Hit(ctx context.Context, point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	r := in.rules[point]
	if r == nil || !in.shouldFireLocked(r) {
		in.mu.Unlock()
		return nil
	}
	r.fired++
	delay, injErr := r.Delay, r.Err
	in.mu.Unlock()

	if delay == 0 && injErr == nil && point == PointServingHang {
		delay = hangDefault
	}
	if delay > 0 {
		if err := sleepCtx(ctx, delay); err != nil {
			return err
		}
	}
	if injErr == nil && delay == 0 && r.Bytes == 0 {
		injErr = fmt.Errorf("%w: injected fault at %s", qerr.ErrServingUnavailable, point)
	}
	return injErr
}

// shouldFireLocked applies the rule's gating. Caller holds in.mu.
func (in *Injector) shouldFireLocked(r *ruleState) bool {
	r.hits++
	if r.After > 1 && r.hits < int64(r.After) {
		return false
	}
	if r.Count > 0 && r.fired >= int64(r.Count) {
		return false
	}
	if r.Every > 1 && r.hits%int64(r.Every) != 0 {
		return false
	}
	if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
		return false
	}
	return true
}

// Bytes returns the byte budget attached to the point's rule (for
// mem.pressure-class faults), or 0 when the point is not armed.
func (in *Injector) Bytes(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if r := in.rules[point]; r != nil {
		return r.Bytes
	}
	return 0
}

// Fired reports how many times the point's rule has fired.
func (in *Injector) Fired(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if r := in.rules[point]; r != nil {
		return r.fired
	}
	return 0
}

// String renders the armed rules in spec form (stable order), for \faults.
func (in *Injector) String() string {
	if in == nil {
		return "off"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	points := make([]string, 0, len(in.rules))
	for p := range in.rules {
		points = append(points, p)
	}
	sort.Strings(points)
	parts := []string{fmt.Sprintf("seed=%d", in.seed)}
	for _, p := range points {
		r := in.rules[p]
		var opts []string
		if r.Prob > 0 && r.Prob < 1 {
			opts = append(opts, fmt.Sprintf("p=%g", r.Prob))
		}
		if r.Every > 1 {
			opts = append(opts, fmt.Sprintf("every=%d", r.Every))
		}
		if r.After > 1 {
			opts = append(opts, fmt.Sprintf("after=%d", r.After))
		}
		if r.Count > 0 {
			opts = append(opts, fmt.Sprintf("count=%d", r.Count))
		}
		if r.Delay > 0 {
			opts = append(opts, fmt.Sprintf("d=%s", r.Delay))
		}
		if r.Bytes > 0 {
			opts = append(opts, fmt.Sprintf("bytes=%d", r.Bytes))
		}
		entry := p
		if len(opts) > 0 {
			entry += ":" + strings.Join(opts, ",")
		}
		parts = append(parts, entry)
	}
	return strings.Join(parts, ";")
}

// sleepCtx sleeps for d or until ctx is done, returning the classified
// context error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return qerr.FromContext(ctx.Err())
	}
}
