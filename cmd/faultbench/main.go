// Command faultbench measures the cost of the query-lifecycle layer on the
// hot relational path (for BENCH_faults.json):
//
//   - exec_plain          — Exec without context (nil-context fast path)
//   - ctx_background      — ExecContext(context.Background()) (normalized
//     to the same nil-context path; should be indistinguishable)
//   - ctx_cancellable     — ExecContext with a live cancellable context
//     (cooperative checks at every morsel boundary)
//   - injector_armed      — cancellable context plus an armed-but-inert
//     fault injector (a morsel.delay rule gated to effectively never
//     fire), the worst production-off configuration
//
// plus the graceful-degradation latency: a Type-3 collaborative query via
// DB-UDF directly versus ExecuteWithFallback with a dead serving pipe
// (DB-PyTorch → DB-UDF), isolating what a failover costs end to end.
//
//	faultbench -rows 200000 -iters 7
//	faultbench -json > BENCH_faults.json   # after editing cpu/date fields
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

func main() {
	rows := flag.Int("rows", 200000, "fact table rows for the relational benchmark")
	iters := flag.Int("iters", 7, "timed iterations per variant")
	fbIters := flag.Int("fbiters", 5, "timed iterations for the fallback-latency benchmark")
	asJSON := flag.Bool("json", false, "emit the BENCH_faults.json document on stdout")
	flag.Parse()

	db := buildRelationalDB(*rows)
	const q = `SELECT d.name, count(*) AS n, sum(b.b) AS s, avg(b.a) AS m
	           FROM big b INNER JOIN dim d ON b.g = d.g
	           WHERE b.a > 250 AND b.b < 75.0
	           GROUP BY d.name ORDER BY name`

	// An armed injector whose rule is gated to (effectively) never fire:
	// the per-morsel cost is one Active lookup plus one gated Hit.
	inert := faults.New(1, faults.Rule{Point: faults.PointMorselDelay,
		Delay: time.Millisecond, Every: 1 << 30})

	variants := []struct {
		name string
		run  func() error
	}{
		{"exec_plain", func() error { _, err := db.Query(q); return err }},
		{"ctx_background", func() error {
			_, err := db.QueryContext(context.Background(), q)
			return err
		}},
		{"ctx_cancellable", func() error {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_, err := db.QueryContext(ctx, q)
			return err
		}},
		{"injector_armed", func() error {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			db.Faults = inert
			_, err := db.QueryContext(ctx, q)
			db.Faults = nil
			return err
		}},
	}

	samples := map[string][]int64{}
	for _, v := range variants { // warmup
		if err := v.run(); err != nil {
			fatalf("%s: %v", v.name, err)
		}
	}
	// Interleave the variants round-robin so slow drift (allocator state,
	// container neighbours) spreads evenly instead of biasing whichever
	// block ran last.
	for i := 0; i < *iters; i++ {
		for _, v := range variants {
			start := time.Now()
			if err := v.run(); err != nil {
				fatalf("%s: %v", v.name, err)
			}
			samples[v.name] = append(samples[v.name], time.Since(start).Nanoseconds())
		}
	}
	if !*asJSON {
		for _, v := range variants {
			fmt.Printf("%-16s mean %s\n", v.name, time.Duration(mean(samples[v.name])))
		}
	}

	directNs, fallbackNs := benchFallback(*fbIters, *asJSON)

	base := mean(samples["exec_plain"])
	overhead := func(name string) float64 {
		return round2(100 * (float64(mean(samples[name]))/float64(base) - 1))
	}
	doc := map[string]any{
		"description": "Cost of the query-lifecycle layer on the hot relational path: the parbench filter+join+aggregate query (200k rows) under the nil-context fast path, a Background context (normalized to the same path), a live cancellable context (per-morsel cooperative checks), and an armed-but-inert fault injector. fallback_latency compares a Type-3 collaborative query answered by DB-UDF directly vs via ExecuteWithFallback with a dead serving pipe (DB-PyTorch retries, breaker, then degrades to DB-UDF).",
		"benchmark":   "go run ./cmd/faultbench -json",
		"cpu":         "Intel(R) Xeon(R) Processor @ 2.10GHz",
		"date":        time.Now().Format("2006-01-02"),
		"results_ns_per_op": map[string]any{
			"exec_plain":      samples["exec_plain"],
			"ctx_background":  samples["ctx_background"],
			"ctx_cancellable": samples["ctx_cancellable"],
			"injector_armed":  samples["injector_armed"],
		},
		"fallback_latency_ns": map[string]any{
			"dbudf_direct":          directNs,
			"fallback_via_pytorch":  fallbackNs,
			"failover_overhead_pct": round2(100 * (float64(mean(fallbackNs))/float64(mean(directNs)) - 1)),
		},
		"summary": map[string]any{
			"plain_mean_ns":         base,
			"ctx_background_pct":    overhead("ctx_background"),
			"ctx_cancellable_pct":   overhead("ctx_cancellable"),
			"injector_armed_pct":    overhead("injector_armed"),
			"disabled_overhead_pct": overhead("ctx_background"),
			"budget_pct":            2.0,
			"verdict":               "",
		},
	}
	within := "within"
	if overhead("ctx_background") > 2.0 {
		within = "OVER"
	}
	verdict := fmt.Sprintf("disabled lifecycle layer costs %+.2f%% (Background ctx, %s the 2%% budget); a live cancellable ctx %+.2f%%, an armed-but-inert injector %+.2f%%; failover to DB-UDF adds %+.1f%% over calling DB-UDF directly (retry+breaker attempts on the dead pipe)",
		overhead("ctx_background"), within, overhead("ctx_cancellable"), overhead("injector_armed"),
		100*(float64(mean(fallbackNs))/float64(mean(directNs))-1))
	doc["summary"].(map[string]any)["verdict"] = verdict

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Println(verdict)
}

// buildRelationalDB replicates parbench's fixture so numbers are
// comparable across the BENCH_*.json files.
func buildRelationalDB(rows int) *sqldb.DB {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	db.Parallelism = 1
	mustExec(db, `CREATE TABLE big (a Int64, b Float64, g Int64)`)
	mustExec(db, `CREATE TABLE dim (g Int64, name String)`)
	big := db.GetTable("big")
	state := uint64(12345)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < rows; i++ {
		row := []sqldb.Datum{
			sqldb.Int(int64(next() % 1000)),
			sqldb.Float(float64(next()%10000) / 100.0),
			sqldb.Int(int64(next() % 500)),
		}
		if err := big.AppendRow(row); err != nil {
			fatalf("%v", err)
		}
	}
	dim := db.GetTable("dim")
	for g := 0; g < 500; g++ {
		if err := dim.AppendRow([]sqldb.Datum{sqldb.Int(int64(g)), sqldb.Str(fmt.Sprintf("grp_%03d", g%37))}); err != nil {
			fatalf("%v", err)
		}
	}
	return db
}

// benchFallback times a Type-3 collaborative query via DB-UDF directly and
// via the degradation ladder with a permanently dead serving pipe.
func benchFallback(iters int, quiet bool) (direct, fallback []int64) {
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		fatalf("%v", err)
	}
	env := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := env.BindDefaults(repo, 20); err != nil {
		fatalf("%v", err)
	}
	env.Retry = strategies.RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, JitterSeed: 3}
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		fatalf("%v", err)
	}
	dead := faults.New(1, faults.Rule{Point: faults.PointServingError})

	for i := 0; i < iters+1; i++ { // first iteration of each loop is warmup
		start := time.Now()
		if _, _, err := (&strategies.DBUDF{}).Execute(context.Background(), env, q); err != nil {
			fatalf("direct DB-UDF: %v", err)
		}
		if i > 0 {
			direct = append(direct, time.Since(start).Nanoseconds())
		}
	}
	for i := 0; i < iters+1; i++ {
		env.Faults = dead
		env.Breaker = &strategies.Breaker{} // fresh breaker per run
		start := time.Now()
		_, bd, err := strategies.ExecuteWithFallback(context.Background(), env, &strategies.DBPyTorch{}, q)
		if err != nil {
			fatalf("fallback run: %v", err)
		}
		if len(bd.FallbackPath) == 0 {
			fatalf("fallback did not engage")
		}
		if i > 0 {
			fallback = append(fallback, time.Since(start).Nanoseconds())
		}
		env.Faults = nil
	}
	if !quiet {
		fmt.Printf("%-16s mean %s\n", "dbudf_direct", time.Duration(mean(direct)))
		fmt.Printf("%-16s mean %s\n", "fallback_path", time.Duration(mean(fallback)))
	}
	return direct, fallback
}

func mean(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Trim one outlier from each end when there are enough samples: these
	// runs share a container with other work.
	if len(sorted) > 4 {
		sorted = sorted[1 : len(sorted)-1]
	}
	var sum int64
	for _, x := range sorted {
		sum += x
	}
	return sum / int64(len(sorted))
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

func mustExec(db *sqldb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "faultbench: "+format+"\n", args...)
	os.Exit(1)
}
