// Command dl2sql is an interactive driver for collaborative queries: it
// generates the synthetic IoT dataset, binds the model repository's nUDFs,
// and executes a query (or one of the Table I templates) under a chosen
// strategy, printing the result and the loading/inference/relational cost
// breakdown.
//
// Usage:
//
//	dl2sql -type 3 -strategy dl2sql-op            # run a Type 3 template
//	dl2sql -query "SELECT ... nUDF_detect(...)"   # run arbitrary SQL
//	dl2sql -type 4 -strategy all -profile server-gpu
//	dl2sql -type 1 -strategy all -trace run.json  # Chrome trace of each phase
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/colquery"
	"repro/internal/hwprofile"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/obs"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

func main() {
	var (
		queryType = flag.Int("type", 3, "query template type 1-4 (ignored when -query is set)")
		query     = flag.String("query", "", "explicit collaborative SQL to run")
		strat     = flag.String("strategy", "dl2sql-op", "dl2sql | dl2sql-op | db-udf | db-pytorch | all")
		profile   = flag.String("profile", "edge-cpu", "edge-cpu | server-cpu | server-gpu")
		scale     = flag.Int("scale", 2, "dataset scale unit")
		side      = flag.Int("side", 8, "keyframe resolution")
		sel       = flag.Float64("sel", 0.05, "template relational selectivity")
		maxRows   = flag.Int("maxrows", 10, "result rows to print")
		explain   = flag.Bool("explain", false, "also print the analyzed query type and nUDF usages")
		trace     = flag.String("trace", "", "write a Chrome trace_event JSON of every strategy execution to this file")
		parallel  = flag.Int("parallel", 0, "executor worker degree (0 = NumCPU default, 1 = serial)")
	)
	flag.Parse()

	ds, err := iotdata.Generate(iotdata.Config{Scale: *scale, KeyframeSide: *side, Seed: 42, PatternCount: 6})
	if err != nil {
		fatalf("generating dataset: %v", err)
	}
	ds.DB.Parallelism = *parallel
	ctx := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(*side, 42)
	if err := ctx.BindDefaults(repo, 30); err != nil {
		fatalf("binding models: %v", err)
	}
	prof, ok := hwprofile.ByName(*profile)
	if !ok {
		fatalf("unknown profile %q", *profile)
	}
	ctx.Profile = prof
	if *trace != "" {
		ctx.Tracer = obs.New()
	}

	sql := *query
	if sql == "" {
		sql, err = colquery.Generate(colquery.QueryType(*queryType), colquery.TemplateParams{Selectivity: *sel})
		if err != nil {
			fatalf("generating template: %v", err)
		}
	}
	q, err := colquery.Analyze(sql)
	if err != nil {
		fatalf("analyzing query: %v", err)
	}

	fmt.Printf("query (%s, %s difficulty):\n  %s\n\n", q.Type, q.Type.Difficulty(), sql)
	if *explain {
		for _, u := range q.UDFs {
			loc := "where"
			if u.InSelect {
				loc = "select"
			}
			if u.InJoin {
				loc = "join"
			}
			fmt.Printf("  nUDF %s(%s) in %s clause\n", u.Name, u.Arg, loc)
		}
		fmt.Println()
	}

	var strats []strategies.Strategy
	switch strings.ToLower(*strat) {
	case "dl2sql":
		strats = []strategies.Strategy{&strategies.DL2SQL{}}
	case "dl2sql-op":
		strats = []strategies.Strategy{&strategies.DL2SQL{Optimized: true}}
	case "db-udf":
		strats = []strategies.Strategy{&strategies.DBUDF{}}
	case "db-pytorch":
		strats = []strategies.Strategy{&strategies.DBPyTorch{}}
	case "all":
		strats = strategies.All()
	default:
		fatalf("unknown strategy %q", *strat)
	}

	for _, s := range strats {
		res, bd, err := s.Execute(context.Background(), ctx, q)
		if err != nil {
			fatalf("%s: %v", s.Name(), err)
		}
		fmt.Printf("== %s on %s ==\n", s.Name(), prof.Name)
		fmt.Printf("loading %.4fs  inference %.4fs  relational %.4fs  total %.4fs\n",
			bd.Loading, bd.Inference, bd.Relational, bd.Total())
		printResult(res, *maxRows)
		fmt.Println()
	}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatalf("creating trace file: %v", err)
		}
		defer f.Close()
		if err := ctx.Tracer.WriteChromeTrace(f); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Printf("wrote %d spans to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			ctx.Tracer.SpanCount(), *trace)
	}
}

func printResult(res *sqldb.Result, maxRows int) {
	if res == nil {
		fmt.Println("(no result)")
		return
	}
	names := make([]string, len(res.Schema))
	for i, c := range res.Schema {
		names[i] = c.Name
	}
	fmt.Printf("%d rows: %s\n", res.NumRows(), strings.Join(names, " | "))
	n := res.NumRows()
	if n > maxRows {
		n = maxRows
	}
	for i := 0; i < n; i++ {
		cells := make([]string, len(res.Cols))
		for j, c := range res.Cols {
			cells[j] = c.Get(i).String()
		}
		fmt.Println("  " + strings.Join(cells, " | "))
	}
	if res.NumRows() > maxRows {
		fmt.Printf("  ... (%d more)\n", res.NumRows()-maxRows)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dl2sql: "+format+"\n", args...)
	os.Exit(1)
}
