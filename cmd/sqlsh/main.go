// Command sqlsh is an interactive SQL shell for the embedded engine. It can
// start from an empty database, the synthetic IoT dataset, or a snapshot
// file, and supports the engine's full dialect plus EXPLAIN / EXPLAIN
// ANALYZE and a few shell meta-commands:
//
//	\d              list tables and views
//	\d NAME         describe a table
//	\profile        show the per-operator execution profile
//	\profile reset  zero the profile counters
//	\parallel N     set the executor's worker degree (0 = NumCPU, 1 = serial)
//	\cache N        enable the statement/plan cache (N entries per LRU)
//	\cache stats    show cache hit/miss/eviction counters; \cache off disables
//	\timing on|off  print each query's wall time
//	\timeout DUR    per-query deadline (e.g. 500ms, 2s); \timeout off clears
//	\faults SPEC    install a fault injector (see internal/faults spec
//	                grammar, e.g. "morsel.delay:d=5ms;seed=1"); \faults stats
//	                shows fire counts, \faults off removes it
//	\trace PATH     start tracing; \trace off writes Chrome trace JSON to PATH
//	\sys            list the sys.* system tables with descriptions (they are
//	                ordinary relations: SELECT * FROM sys.queries works, and
//	                Ctrl-C cancels a sys.* scan like any other query)
//	\slowlog        show queries over the slow threshold; \slowlog DUR sets it
//	\save PATH      snapshot the database to a file
//	\q              quit (flushes an active trace first)
//
// Ctrl-C cancels the in-flight query (which returns a typed "query
// cancelled" error) instead of killing the shell.
//
// Usage:
//
//	sqlsh                      # empty database
//	sqlsh -iot -scale 5        # synthetic IoT dataset
//	sqlsh -load snap.db        # restore a snapshot
//	echo "SELECT 1 AS x;" | sqlsh
//
// With -connect the shell talks to a running sqlserved instead of an
// embedded database; sessions, admission control, and the statement/plan
// cache live server-side, and server state is queryable through the sys.*
// tables (SELECT * FROM sys.sessions):
//
//	sqlsh -connect http://127.0.0.1:7878 -tenant analytics
//
// In connect mode \timeout and \parallel set the server-side session
// variables; Ctrl-C cancels the in-flight request (the server observes the
// disconnect and cancels the query at the next morsel boundary). \trace
// works against the server's tail-sampled trace store: each response's
// trace ID (when the sampler retained it) is echoed after the query, and
// \trace off fetches the last retained trace from /v1/traces/{id} as
// Chrome trace JSON.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/sqldb"
)

// shell is the REPL state shared between queries and meta-commands.
type shell struct {
	db        *sqldb.DB
	timing    bool
	traceFile string        // destination for the active trace; "" when off
	timeout   time.Duration // per-query deadline; 0 = none

	mu     sync.Mutex
	cancel context.CancelFunc // cancels the in-flight query; nil when idle
}

// interrupt routes SIGINT to the in-flight query's cancel function. At an
// idle prompt the signal is swallowed with a hint, so Ctrl-C never kills
// the shell itself.
func (sh *shell) interrupt() {
	sh.mu.Lock()
	c := sh.cancel
	sh.mu.Unlock()
	if c != nil {
		c()
		return
	}
	fmt.Println("^C (use \\q to quit)")
}

func main() {
	var (
		iot     = flag.Bool("iot", false, "start with the synthetic IoT dataset")
		scale   = flag.Int("scale", 2, "IoT dataset scale unit")
		side    = flag.Int("side", 8, "IoT keyframe resolution")
		load    = flag.String("load", "", "restore a snapshot file")
		connect = flag.String("connect", "", "connect to a sqlserved base URL instead of embedding a database")
		tenant  = flag.String("tenant", "", "tenant label for -connect (server default when empty)")
	)
	flag.Parse()

	if *connect != "" {
		runClientShell(*connect, *tenant)
		return
	}

	var db *sqldb.DB
	switch {
	case *load != "":
		var err error
		db, err = sqldb.LoadFile(*load)
		if err != nil {
			fatalf("loading %s: %v", *load, err)
		}
		fmt.Printf("restored %d tables from %s\n", len(db.TableNames()), *load)
	case *iot:
		ds, err := iotdata.Generate(iotdata.Config{Scale: *scale, KeyframeSide: *side, Seed: 42, PatternCount: 6})
		if err != nil {
			fatalf("generating dataset: %v", err)
		}
		db = ds.DB
		fmt.Printf("generated IoT dataset (scale %d)\n", *scale)
	default:
		db = sqldb.New()
	}
	if db.Profile == nil {
		db.Profile = sqldb.NewProfile()
	}
	// Self-observability: every statement leaves a record in the query
	// history ring, and the sys.* catalog exposes engine state to SQL
	// (\sys lists the tables; try SELECT * FROM sys.queries).
	if db.Metrics == nil {
		db.Metrics = obs.NewRegistry()
	}
	db.History = obs.NewQueryHistory(256)
	db.History.SetSlowThreshold(100 * time.Millisecond)
	db.EnableSysCatalog()
	sh := &shell{db: db}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		for range sig {
			sh.interrupt()
		}
	}()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	var pending strings.Builder
	if interactive {
		fmt.Print("sqlsh> ")
	}
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !sh.meta(trimmed) {
				sh.flushTrace()
				return
			}
			if interactive {
				fmt.Print("sqlsh> ")
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			if interactive {
				fmt.Print("   ..> ")
			}
			continue
		}
		sh.run(pending.String())
		pending.Reset()
		if interactive {
			fmt.Print("sqlsh> ")
		}
	}
	if pending.Len() > 0 {
		sh.run(pending.String())
	}
	sh.flushTrace()
}

// meta handles shell meta-commands; it returns false to quit.
func (sh *shell) meta(cmd string) bool {
	db := sh.db
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`, `\quit`:
		return false
	case `\d`:
		if len(fields) == 1 {
			names := db.TableNames()
			sort.Strings(names)
			for _, n := range names {
				t := db.GetTable(n)
				fmt.Printf("%-20s %d rows\n", n, t.NumRows())
			}
			return true
		}
		t := db.GetTable(fields[1])
		if t == nil {
			fmt.Printf("no table %q\n", fields[1])
			return true
		}
		for _, c := range t.Schema {
			fmt.Printf("  %-20s %s\n", c.Name, c.Type)
		}
		return true
	case `\profile`:
		if len(fields) == 2 && fields[1] == "reset" {
			db.Profile.Reset()
			fmt.Println("profile reset")
			return true
		}
		if db.Profile != nil {
			fmt.Print(db.Profile.String())
		}
		return true
	case `\parallel`:
		if len(fields) == 1 {
			deg := db.Parallelism
			if deg == 0 {
				fmt.Printf("parallelism: default (%d workers)\n", par.DefaultDegree())
			} else {
				fmt.Printf("parallelism: %d\n", deg)
			}
			return true
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			fmt.Println("usage: \\parallel N   (0 = NumCPU default, 1 = serial)")
			return true
		}
		db.Parallelism = n
		switch n {
		case 0:
			fmt.Printf("parallelism reset to default (%d workers)\n", par.DefaultDegree())
		case 1:
			fmt.Println("parallelism 1 (serial)")
		default:
			fmt.Printf("parallelism %d\n", n)
		}
		return true
	case `\cache`:
		if len(fields) == 1 || fields[1] == "stats" {
			if !db.CacheEnabled() {
				fmt.Println("cache: disabled (enable with \\cache N)")
				return true
			}
			fmt.Println(db.CacheStats().String())
			return true
		}
		if fields[1] == "off" {
			db.EnableCache(0)
			fmt.Println("cache disabled")
			return true
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			fmt.Println("usage: \\cache N | \\cache stats | \\cache off")
			return true
		}
		db.EnableCache(n)
		if n == 0 {
			fmt.Println("cache disabled")
		} else {
			fmt.Printf("statement/plan cache enabled (%d entries per LRU)\n", n)
		}
		return true
	case `\sys`:
		for _, st := range db.SysTables() {
			fmt.Printf("%-18s %s\n", st.Name, st.Description)
		}
		return true
	case `\slowlog`:
		if len(fields) == 2 {
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				fmt.Println("usage: \\slowlog [DUR]   (e.g. \\slowlog 250ms; no argument lists slow queries)")
				return true
			}
			db.History.SetSlowThreshold(d)
			fmt.Printf("slow-query threshold %s\n", d)
			return true
		}
		slow := db.History.SlowSnapshot()
		if len(slow) == 0 {
			fmt.Printf("no queries over %s yet\n", db.History.SlowThreshold())
			return true
		}
		for _, r := range slow {
			errNote := ""
			if r.ErrClass != "" {
				errNote = "  [" + r.ErrClass + "]"
			}
			fmt.Printf("%8.1fms  %6d rows  %s%s\n",
				float64(r.Wall)/1e6, r.RowsOut, r.SQL, errNote)
		}
		return true
	case `\timing`:
		switch {
		case len(fields) == 1:
			sh.timing = !sh.timing
		case fields[1] == "on":
			sh.timing = true
		case fields[1] == "off":
			sh.timing = false
		default:
			fmt.Println("usage: \\timing [on|off]")
			return true
		}
		fmt.Printf("timing %s\n", onOff(sh.timing))
		return true
	case `\timeout`:
		switch {
		case len(fields) == 1:
			if sh.timeout == 0 {
				fmt.Println("timeout: off")
			} else {
				fmt.Printf("timeout: %s\n", sh.timeout)
			}
		case fields[1] == "off" || fields[1] == "0":
			sh.timeout = 0
			fmt.Println("timeout off")
		default:
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				fmt.Println("usage: \\timeout DURATION | \\timeout off   (e.g. \\timeout 500ms)")
				return true
			}
			sh.timeout = d
			fmt.Printf("timeout %s\n", d)
		}
		return true
	case `\faults`:
		switch {
		case len(fields) == 1 || fields[1] == "stats":
			if db.Faults == nil {
				fmt.Println("faults: off (install with \\faults SPEC)")
			} else {
				fmt.Println(db.Faults.String())
			}
		case fields[1] == "off":
			db.Faults = nil
			fmt.Println("faults off")
		default:
			inj, err := faults.Parse(strings.Join(fields[1:], " "))
			if err != nil {
				fmt.Printf("bad fault spec: %v\n", err)
				fmt.Println(`usage: \faults point[:p=P,every=N,after=N,count=N,d=DUR,bytes=B][;...][;seed=S]`)
				return true
			}
			db.Faults = inj
			fmt.Printf("faults installed: %s\n", inj.String())
		}
		return true
	case `\trace`:
		if len(fields) != 2 {
			fmt.Println("usage: \\trace PATH | \\trace off")
			return true
		}
		if fields[1] == "off" {
			if sh.traceFile == "" {
				fmt.Println("tracing is not active")
				return true
			}
			sh.flushTrace()
			return true
		}
		sh.traceFile = fields[1]
		db.Tracer = obs.New()
		fmt.Printf("tracing to %s (\\trace off to write)\n", sh.traceFile)
		return true
	case `\save`:
		if len(fields) != 2 {
			fmt.Println("usage: \\save PATH")
			return true
		}
		if err := db.SaveFile(fields[1]); err != nil {
			fmt.Printf("save failed: %v\n", err)
		} else {
			fmt.Printf("saved to %s\n", fields[1])
		}
		return true
	}
	fmt.Printf("unknown meta-command %s\n", fields[0])
	return true
}

// flushTrace writes the active trace (if any) as Chrome trace_event JSON
// and disables tracing.
func (sh *shell) flushTrace() {
	if sh.traceFile == "" || sh.db.Tracer == nil {
		return
	}
	f, err := os.Create(sh.traceFile)
	if err != nil {
		fmt.Printf("trace write failed: %v\n", err)
		return
	}
	defer f.Close()
	if err := sh.db.Tracer.WriteChromeTrace(f); err != nil {
		fmt.Printf("trace write failed: %v\n", err)
		return
	}
	fmt.Printf("wrote %d spans to %s (load in chrome://tracing or ui.perfetto.dev)\n",
		sh.db.Tracer.SpanCount(), sh.traceFile)
	sh.db.Tracer = nil
	sh.traceFile = ""
}

func (sh *shell) run(sql string) {
	if strings.TrimSpace(sql) == "" {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	if sh.timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), sh.timeout)
	}
	sh.mu.Lock()
	sh.cancel = cancel
	sh.mu.Unlock()
	start := time.Now()
	res, err := sh.db.ExecContext(ctx, sql)
	elapsed := time.Since(start)
	sh.mu.Lock()
	sh.cancel = nil
	sh.mu.Unlock()
	cancel()
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	printResult(res)
	if sh.timing {
		fmt.Printf("Time: %s\n", elapsed.Round(time.Microsecond))
	}
}

// printResult renders a result relation ("ok" for statements without one).
func printResult(res *sqldb.Result) {
	if res == nil {
		fmt.Println("ok")
		return
	}
	header := make([]string, len(res.Schema))
	for i, c := range res.Schema {
		header[i] = c.Name
	}
	fmt.Println(strings.Join(header, " | "))
	n := res.NumRows()
	const maxRows = 200
	for i := 0; i < n && i < maxRows; i++ {
		cells := make([]string, len(res.Cols))
		for j, c := range res.Cols {
			cells[j] = c.Get(i).String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if n > maxRows {
		fmt.Printf("... (%d more rows)\n", n-maxRows)
	}
	fmt.Printf("(%d rows)\n", n)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// isTerminal reports whether stdin looks interactive (best effort without
// importing syscall-specific packages).
func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlsh: "+format+"\n", args...)
	os.Exit(1)
}

// ---- -connect mode: the shell as a sqlserved client ----

// cshell is the connected-mode REPL state.
type cshell struct {
	cli    *server.Client
	timing bool
	// traceFile is the destination for the last retained server-side
	// trace ("" when \trace is off); lastShown dedups the per-query
	// trace-ID echo.
	traceFile string
	lastShown string

	mu     sync.Mutex
	cancel context.CancelFunc
}

func (sh *cshell) interrupt() {
	sh.mu.Lock()
	c := sh.cancel
	sh.mu.Unlock()
	if c != nil {
		c()
		return
	}
	fmt.Println("^C (use \\q to quit)")
}

func runClientShell(base, tenant string) {
	cli := server.Dial(base)
	ctx, cancelConnect := context.WithTimeout(context.Background(), 5*time.Second)
	err := cli.Connect(ctx, tenant)
	cancelConnect()
	if err != nil {
		fatalf("connecting to %s: %v", base, err)
	}
	fmt.Printf("connected to %s (session %s, tenant %s)\n", base, cli.Session(), cli.Tenant())
	sh := &cshell{cli: cli}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		for range sig {
			sh.interrupt()
		}
	}()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	var pending strings.Builder
	if interactive {
		fmt.Print("sqlsh> ")
	}
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !sh.meta(trimmed) {
				sh.close()
				return
			}
			if interactive {
				fmt.Print("sqlsh> ")
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			if interactive {
				fmt.Print("   ..> ")
			}
			continue
		}
		sh.run(pending.String())
		pending.Reset()
		if interactive {
			fmt.Print("sqlsh> ")
		}
	}
	if pending.Len() > 0 {
		sh.run(pending.String())
	}
	sh.close()
}

func (sh *cshell) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	sh.cli.Close(ctx)
}

// meta handles connected-mode meta-commands; \timeout and \parallel set
// server-side session variables. Engine-state commands point at the sys.*
// tables, which work through the server like any other relation.
func (sh *cshell) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	switch fields[0] {
	case `\q`, `\quit`:
		return false
	case `\timing`:
		switch {
		case len(fields) == 1:
			sh.timing = !sh.timing
		case fields[1] == "on":
			sh.timing = true
		case fields[1] == "off":
			sh.timing = false
		default:
			fmt.Println("usage: \\timing [on|off]")
			return true
		}
		fmt.Printf("timing %s\n", onOff(sh.timing))
		return true
	case `\timeout`:
		if len(fields) != 2 {
			fmt.Println("usage: \\timeout DURATION | \\timeout off")
			return true
		}
		d := time.Duration(0)
		if fields[1] != "off" && fields[1] != "0" {
			var err error
			d, err = time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				fmt.Println("usage: \\timeout DURATION | \\timeout off   (e.g. \\timeout 500ms)")
				return true
			}
		}
		if err := sh.cli.SetTimeout(ctx, d); err != nil {
			fmt.Printf("error: %v\n", err)
			return true
		}
		if d == 0 {
			fmt.Println("timeout off")
		} else {
			fmt.Printf("timeout %s (server-side)\n", d)
		}
		return true
	case `\parallel`:
		if len(fields) != 2 {
			fmt.Println("usage: \\parallel N   (0 = server default)")
			return true
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			fmt.Println("usage: \\parallel N   (0 = server default)")
			return true
		}
		if err := sh.cli.SetParallelism(ctx, n); err != nil {
			fmt.Printf("error: %v\n", err)
			return true
		}
		fmt.Printf("parallelism %d (server-side)\n", n)
		return true
	case `\sys`:
		fmt.Println("server state is in the sys.* tables, e.g.:")
		fmt.Println("  SELECT * FROM sys.sessions;")
		fmt.Println("  SELECT * FROM sys.admission;")
		fmt.Println("  SELECT sql, wall_ms FROM sys.queries ORDER BY wall_ms DESC;")
		fmt.Println("  SELECT * FROM sys.spans WHERE trace_id = '...';")
		return true
	case `\trace`:
		if len(fields) != 2 {
			fmt.Println("usage: \\trace PATH | \\trace off")
			return true
		}
		if fields[1] == "off" {
			if sh.traceFile == "" {
				fmt.Println("tracing is not active")
				return true
			}
			sh.flushTrace(ctx)
			return true
		}
		sh.traceFile = fields[1]
		fmt.Printf("tracing to %s: retained trace IDs are echoed after each query; \\trace off fetches the last one\n", sh.traceFile)
		return true
	}
	fmt.Printf("meta-command %s is not available in -connect mode\n", fields[0])
	return true
}

func (sh *cshell) run(sql string) {
	if strings.TrimSpace(sql) == "" {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	sh.mu.Lock()
	sh.cancel = cancel
	sh.mu.Unlock()
	start := time.Now()
	res, err := sh.cli.Query(ctx, sql)
	elapsed := time.Since(start)
	sh.mu.Lock()
	sh.cancel = nil
	sh.mu.Unlock()
	cancel()
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	printResult(res)
	if sh.timing {
		fmt.Printf("Time: %s\n", elapsed.Round(time.Microsecond))
	}
	if sh.traceFile != "" {
		if id := sh.cli.LastTraceID(); id != "" && id != sh.lastShown {
			fmt.Printf("trace: %s\n", id)
			sh.lastShown = id
		}
	}
}

// flushTrace fetches the last retained server-side trace from
// /v1/traces/{id} and writes it as Chrome trace_event JSON.
func (sh *cshell) flushTrace(ctx context.Context) {
	defer func() { sh.traceFile = "" }()
	id := sh.cli.LastTraceID()
	if id == "" {
		fmt.Println("no retained trace yet (the tail sampler kept none of this session's requests)")
		return
	}
	raw, err := sh.cli.TraceJSON(ctx, id)
	if err != nil {
		fmt.Printf("trace fetch failed: %v\n", err)
		return
	}
	if err := os.WriteFile(sh.traceFile, raw, 0o644); err != nil {
		fmt.Printf("trace write failed: %v\n", err)
		return
	}
	fmt.Printf("wrote trace %s to %s (load in chrome://tracing or ui.perfetto.dev)\n", id, sh.traceFile)
}
