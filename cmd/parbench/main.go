// Command parbench measures the large filter+hash-join+aggregate query used
// for BENCH_parallel.json at a chosen executor parallelism degree.
//
//	parbench -rows 300000 -iters 5 -parallel 1
//	parbench -rows 300000 -iters 5 -parallel 4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sqldb"
)

func main() {
	rows := flag.Int("rows", 300000, "fact table rows")
	iters := flag.Int("iters", 5, "timed iterations")
	parallel := flag.Int("parallel", 1, "executor worker degree (0 = NumCPU default, 1 = serial)")
	asJSON := flag.Bool("json", false, "emit a machine-readable result line on stdout")
	flag.Parse()

	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	db.Parallelism = *parallel
	must(db.Exec(`CREATE TABLE big (a Int64, b Float64, g Int64)`))
	must(db.Exec(`CREATE TABLE dim (g Int64, name String)`))
	big := db.GetTable("big")
	state := uint64(12345)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < *rows; i++ {
		a := int64(next() % 1000)
		b := float64(next()%10000) / 100.0
		g := int64(next() % 500)
		if err := big.AppendRow([]sqldb.Datum{sqldb.Int(a), sqldb.Float(b), sqldb.Int(g)}); err != nil {
			panic(err)
		}
	}
	dim := db.GetTable("dim")
	for g := 0; g < 500; g++ {
		if err := dim.AppendRow([]sqldb.Datum{sqldb.Int(int64(g)), sqldb.Str(fmt.Sprintf("grp_%03d", g%37))}); err != nil {
			panic(err)
		}
	}
	const q = `SELECT d.name, count(*) AS n, sum(b.b) AS s, avg(b.a) AS m
	           FROM big b INNER JOIN dim d ON b.g = d.g
	           WHERE b.a > 250 AND b.b < 75.0
	           GROUP BY d.name ORDER BY name`
	// warmup
	must(db.Query(q))
	var best, total time.Duration
	resultRows := 0
	for i := 0; i < *iters; i++ {
		start := time.Now()
		res, err := db.Query(q)
		if err != nil {
			panic(err)
		}
		el := time.Since(start)
		total += el
		if best == 0 || el < best {
			best = el
		}
		resultRows = res.NumRows()
		if !*asJSON {
			fmt.Printf("iter %d: %s\n", i, el)
		}
	}
	mean := total / time.Duration(*iters)
	if *asJSON {
		out := map[string]any{
			"rows":        *rows,
			"parallelism": *parallel,
			"iters":       *iters,
			"result_rows": resultRows,
			"best_ms":     float64(best.Microseconds()) / 1000.0,
			"mean_ms":     float64(mean.Microseconds()) / 1000.0,
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			panic(err)
		}
		return
	}
	fmt.Printf("result rows: %d\n", resultRows)
	fmt.Printf("best=%s mean=%s\n", best, mean)
}

func must(res *sqldb.Result, err error) {
	if err != nil {
		panic(err)
	}
}
