// Command tracebench measures the cost of always-on request tracing (for
// BENCH_trace.json). The workloads run twice per round over one shared
// IoT dataset:
//
//   - type1/type3 — collaborative queries through the DB-UDF strategy
//     with the fallback ladder (ExecuteWithFallback owns the trace). This
//     is the obsbench paired workload — the paper's subject — and the
//     population the 2% relative budget gates on.
//   - sql — a sub-100µs join + aggregate through the engine's plain
//     statement path (recordQuery opens the statement span, the executor
//     hangs per-operator spans under it). A deliberate stress line: the
//     fixed per-trace cost (~1.5µs: ID + arena + span tree + tail
//     decision) is a visible fraction of a query this small, so this
//     workload is gated on the ABSOLUTE per-query delta, not the ratio.
//
// Both configurations keep the previous PR's always-on observability armed
// (metrics registry + query-history ring + sys.* catalog); the only delta
// is the tail-sampled trace store:
//
//   - baseline — db.Traces/env.Traces nil: no trace is created, every
//     tracing call site pays only its nil check
//   - traced   — a seeded TraceStore with the default tail-sampling policy
//     (slow/error/fallback/breaker always kept, 1 in 64 otherwise): every
//     query builds its span tree, and Finish runs the sampling decision
//
// The run ends with self-checks: with retention forced (SampleEvery 1) a
// query's span tree must be reachable through SELECTs over sys.traces and
// sys.spans, and the trace must export as Chrome trace_event JSON.
//
//	tracebench
//	tracebench -json > BENCH_trace.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/obs"
	"repro/internal/strategies"
)

func main() {
	iters := flag.Int("iters", 25, "timed iterations per variant")
	scale := flag.Int("scale", 20, "IoT dataset scale unit (20 = paper default)")
	asJSON := flag.Bool("json", false, "emit the BENCH_trace.json document on stdout")
	flag.Parse()

	ds, err := iotdata.Generate(iotdata.Config{Scale: *scale, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		fatalf("%v", err)
	}
	env := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := env.BindDefaults(repo, 20); err != nil {
		fatalf("%v", err)
	}

	// The previous PR's observability stays armed in BOTH configs — the
	// measured delta is exactly the tracing path.
	db := ds.DB
	db.Metrics = obs.NewRegistry()
	db.History = obs.NewQueryHistory(256)
	env.Metrics, env.History = db.Metrics, db.History
	db.EnableSysCatalog()
	env.AttachObservability(db)

	traces := obs.NewTraceStore(obs.TraceStoreConfig{Seed: 1, Metrics: db.Metrics})
	arm := func() { db.Traces, env.Traces = traces, traces }
	disarm := func() { db.Traces, env.Traces = nil, nil }
	disarm()

	q1, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		fatalf("generating Type1: %v", err)
	}
	q3, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		fatalf("generating Type3: %v", err)
	}
	colRun := func(q *colquery.Query) func(batch int) error {
		return func(batch int) error {
			for i := 0; i < batch; i++ {
				if _, _, err := strategies.ExecuteWithFallback(context.Background(), env, &strategies.DBUDF{}, q); err != nil {
					return err
				}
			}
			return nil
		}
	}
	const sqlQuery = `SELECT F.patternID p, count(*) c, avg(F.meter) m
FROM fabric F, device D
WHERE F.transID = D.transID AND F.temperature > 20.0
GROUP BY F.patternID`

	// Each timed sample executes its query `batch` times, sized so each
	// sample's window is tens of milliseconds — the plain SQL query runs in
	// tens of microseconds, inside this container's scheduling-noise floor.
	workloads := []struct {
		name  string
		batch int
		run   func(batch int) error
	}{
		{"type1", 4, colRun(q1)},
		{"type3", 4, colRun(q3)},
		{"sql", 384, func(batch int) error {
			for i := 0; i < batch; i++ {
				if _, err := db.ExecContext(context.Background(), sqlQuery); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	// Warmup: one pass of every (workload, config) cell.
	for _, w := range workloads {
		if err := w.run(w.batch); err != nil {
			fatalf("warmup %s: %v", w.name, err)
		}
		arm()
		err := w.run(w.batch)
		disarm()
		if err != nil {
			fatalf("warmup %s traced: %v", w.name, err)
		}
	}

	// Each cell is measured in process CPU time (getrusage), not wall
	// time: this container is a single shared core with multi-second
	// performance regimes, and wall-clock cells scatter 5-20% however
	// large the batch — CPU time doesn't charge the process for time it
	// wasn't running, and repeats to within fractions of a microsecond
	// per query. Rounds still interleave configs (alternating which runs
	// first) so any residual drift cancels, and a forced collection
	// before each cell keeps the previous cell's GC debt out of its bill.
	baseNs := map[string][]int64{}
	tracedNs := map[string][]int64{}
	timeCell := func(name string, run func(batch int) error, batch int, traced bool) {
		runtime.GC()
		if traced {
			arm()
		}
		start := cpuTime()
		err := run(batch)
		elapsed := (cpuTime() - start).Nanoseconds() / int64(batch)
		if traced {
			disarm()
		}
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		if traced {
			tracedNs[name] = append(tracedNs[name], elapsed)
		} else {
			baseNs[name] = append(baseNs[name], elapsed)
		}
	}
	for i := 0; i < *iters; i++ {
		for _, w := range workloads {
			first := i%2 == 1
			timeCell(w.name, w.run, w.batch, first)
			timeCell(w.name, w.run, w.batch, !first)
		}
	}

	// Self-checks: force retention, run one query of each shape, and
	// demand the span trees answer SQL and export as Chrome JSON.
	keepAll := obs.NewTraceStore(obs.TraceStoreConfig{Seed: 1, SampleEvery: 1, Metrics: db.Metrics})
	db.Traces, env.Traces = keepAll, keepAll
	defer func() { db.Traces, env.Traces = nil, nil }()
	if _, err := db.ExecContext(context.Background(), sqlQuery); err != nil {
		fatalf("self-check query: %v", err)
	}
	if _, _, err := strategies.ExecuteWithFallback(context.Background(), env, &strategies.DBUDF{}, q1); err != nil {
		fatalf("self-check colquery: %v", err)
	}
	sel, err := db.Query(`SELECT count(*) c FROM sys.traces WHERE spans >= 1`)
	if err != nil {
		fatalf("sys.traces self-check: %v", err)
	}
	if sel.Cols[0].Get(0).I == 0 {
		fatalf("sys.traces self-check: no traces retained with SampleEvery=1")
	}
	sel, err = db.Query(`SELECT count(*) c FROM sys.spans WHERE trace_id <> ''`)
	if err != nil {
		fatalf("sys.spans self-check: %v", err)
	}
	if sel.Cols[0].Get(0).I == 0 {
		fatalf("sys.spans self-check: no spans visible")
	}
	snap := keepAll.Snapshot()
	var chrome bytes.Buffer
	if err := snap[len(snap)-1].WriteChromeTrace(&chrome); err != nil {
		fatalf("chrome export self-check: %v", err)
	}
	if !strings.Contains(chrome.String(), "trace_id") {
		fatalf("chrome export self-check: no trace_id in output")
	}
	if err := db.Metrics.Check(); err != nil {
		fatalf("registry self-check: %v", err)
	}

	// Gating: the 2% relative budget applies to the collaborative
	// workloads (the obsbench paired workload, the paper's subject). The
	// sql microquery pays the same fixed per-trace cost on a ~60µs query,
	// so it is gated on the absolute per-query delta instead — a ratio
	// gate there would only measure the query's smallness.
	const sqlBudgetNs = 5000
	results := map[string]any{}
	summary := map[string]any{"budget_pct": 2.0, "sql_budget_ns": sqlBudgetNs}
	worst := -100.0
	var parts []string
	var sqlDelta int64
	for _, w := range workloads {
		pct := round2(overheadPct(baseNs[w.name], tracedNs[w.name]))
		results[w.name+"_baseline"] = baseNs[w.name]
		results[w.name+"_traced"] = tracedNs[w.name]
		summary[w.name+"_overhead_pct"] = pct
		if w.name == "sql" {
			sqlDelta = int64(median(tracedNs[w.name]) - median(baseNs[w.name]))
			summary["sql_delta_ns_per_query"] = sqlDelta
			parts = append(parts, fmt.Sprintf("%s %+dns (%+.2f%%)", w.name, sqlDelta, pct))
		} else {
			if pct > worst {
				worst = pct
			}
			parts = append(parts, fmt.Sprintf("%s %+.2f%%", w.name, pct))
		}
		if !*asJSON {
			fmt.Printf("%-9s baseline %-12s traced %-12s cpu/query (%+.2f%%)\n", w.name,
				time.Duration(mean(baseNs[w.name])), time.Duration(mean(tracedNs[w.name])), pct)
		}
	}
	within := "within"
	if worst > 2.0 || sqlDelta > sqlBudgetNs {
		within = "OVER"
	}
	verdict := fmt.Sprintf(
		"always-on tracing (span trees + tail sampler, default 1-in-64 retention) costs %s on top of the armed observability baseline; collaborative worst case %+.2f%% and sql stress delta %+dns/query, %s budget (2%% relative on the collaborative workloads, %dns absolute on the microquery); sys.traces/sys.spans SQL and Chrome export self-checks passed",
		strings.Join(parts, ", "), worst, sqlDelta, within, sqlBudgetNs)
	summary["worst_overhead_pct"] = round2(worst)
	summary["verdict"] = verdict

	doc := map[string]any{
		"description":       "Cost of always-on request tracing: Type 1 and Type 3 collaborative queries via DB-UDF (the obsbench paired workload, gated at 2% relative) and a sub-100µs plain-SQL join+aggregate stress line (gated on the absolute per-query delta — the fixed ~1.5µs per-trace cost is a visible fraction of a query this small). All workloads run with metrics + query history armed in both configurations, with and without the tail-sampled trace store. The traced configuration builds a span tree per query and runs the Finish-time sampling decision; the baseline pays only the nil checks. Cells are measured in process CPU time (getrusage) per query — immune to the shared-core scheduling noise that makes wall-clock cells scatter on this container. Self-checks force retention and verify the span trees through sys.traces/sys.spans SQL and the Chrome trace_event export.",
		"benchmark":         "go run ./cmd/tracebench -json",
		"cpu":               "Intel(R) Xeon(R) Processor @ 2.10GHz",
		"date":              time.Now().Format("2006-01-02"),
		"results_ns_per_op": results,
		"summary":           summary,
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Println(verdict)
}

// overheadPct estimates traced-vs-baseline overhead as the ratio of the
// two sample medians. The cells alternate configurations within every
// round, so slow machine drift hits both samples equally and cancels in
// the ratio; the medians shrug off the scheduling outliers this container
// produces. (An earlier per-round paired-ratio median amplified them
// instead: one stalled cell skews its round's ratio by its full magnitude,
// and with 10-20% per-cell scatter the ratio distribution is right-skewed,
// reading several points of phantom overhead.)
func overheadPct(base, traced []int64) float64 {
	if len(base) == 0 || len(traced) == 0 {
		return 0
	}
	return 100 * (median(traced)/median(base) - 1)
}

// cpuTime reads the process's consumed CPU time (user + system). Unlike
// wall time it is immune to the time this container's shared core spends
// running somebody else, which is the dominant noise source here.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		fatalf("getrusage: %v", err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

func median(xs []int64) float64 {
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n%2 == 1 {
		return float64(sorted[n/2])
	}
	return float64(sorted[n/2-1]+sorted[n/2]) / 2
}

// mean is the trimmed mean used across the BENCH_*.json harnesses: drop
// one outlier from each end when there are enough samples.
func mean(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) > 4 {
		sorted = sorted[1 : len(sorted)-1]
	}
	var sum int64
	for _, x := range sorted {
		sum += x
	}
	return sum / int64(len(sorted))
}

func round2(x float64) float64 {
	if x < 0 {
		return -float64(int(-x*100+0.5)) / 100
	}
	return float64(int(x*100+0.5)) / 100
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracebench: "+format+"\n", args...)
	os.Exit(1)
}
