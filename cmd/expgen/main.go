// Command expgen regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout.
//
// Usage:
//
//	expgen [-scale N] [-side N] [-queries N] [-sel F] [-depths 5,10,...]
//	       [-only table4,fig8,...] [-out FILE]
//
// With no flags it runs the full suite at the default laptop scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		scale   = flag.Int("scale", 2, "dataset scale unit (video table gets 100x this)")
		side    = flag.Int("side", 8, "keyframe resolution (the paper uses 224)")
		queries = flag.Int("queries", 2, "queries per type in mixed benchmarks (the paper uses 100)")
		sel     = flag.Float64("sel", 0.05, "default accumulated relational selectivity")
		depths  = flag.String("depths", "5,10,15,20", "ResNet depths for Table IV/VI")
		only    = flag.String("only", "", "comma-separated experiment ids (table1,table4,table5,table6,fig8,fig9,fig10,fig11,fig12,fig13,fig14); empty = all")
		out     = flag.String("out", "", "also write results to this file")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.KeyframeSide = *side
	cfg.QueriesPerType = *queries
	cfg.Selectivity = *sel
	cfg.Depths = nil
	for _, d := range strings.Split(*depths, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(d))
		if err != nil {
			fatalf("bad depth %q: %v", d, err)
		}
		cfg.Depths = append(cfg.Depths, n)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "expgen: scale=%d side=%d queries/type=%d selectivity=%.4f depths=%v\n\n",
		cfg.Scale, cfg.KeyframeSide, cfg.QueriesPerType, cfg.Selectivity, cfg.Depths)

	start := time.Now()
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		fatalf("building suite: %v", err)
	}
	fmt.Fprintf(w, "fixtures ready in %s\n\n", time.Since(start).Round(time.Millisecond))

	type experiment struct {
		id  string
		run func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"table1", suite.TableITypes},
		{"table4", suite.Table4StorageOverheads},
		{"fig8", suite.Fig8Overall},
		{"fig9", suite.Fig9CNNBlocks},
		{"fig10", suite.Fig10RelOps},
		{"fig11", suite.Fig11PreJoin},
		{"table5", func() (*bench.Table, error) {
			return suite.Table5Selectivity([]float64{0.02, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0})
		}},
		{"table6", func() (*bench.Table, error) { return suite.Table6Depth(cfg.Depths) }},
		{"fig12", suite.Fig12CostModel},
		{"fig13", suite.Fig13PerOp},
		{"fig14", func() (*bench.Table, error) {
			return suite.Fig14Hints([]float64{0.02, 0.1, 0.2, 0.4})
		}},
		{"ablation1", suite.AblationBatching},
		{"ablation2", suite.AblationSymmetricJoin},
		{"ablation3", suite.AblationPredicateOrdering},
		// Last so its snapshot covers every strategy execution above.
		{"metrics", suite.MetricsReport},
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToLower(id)); id != "" {
			selected[id] = true
		}
	}

	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		t0 := time.Now()
		tab, err := e.run()
		if err != nil {
			fatalf("%s: %v", e.id, err)
		}
		fmt.Fprintln(w, tab.Render())
		fmt.Fprintf(w, "(%s regenerated in %s)\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "expgen: "+format+"\n", args...)
	os.Exit(1)
}
