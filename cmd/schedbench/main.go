// Command schedbench measures cross-query inference throughput with and
// without the shared scheduler (internal/schedule): N concurrent workers
// each run a closed loop of inference requests — one (model, keyframe)
// forward pass per request, drawn from a pool of distinct keyframes — and
// the bench reports aggregate requests/second per concurrency level for
// both modes.
//
// The "direct" mode is the no-scheduler baseline: every request decodes
// its keyframe and runs its own forward pass, the way each query's
// strategy-local inference path behaves without a scheduler. The "sched"
// mode submits every request to one shared scheduler, where concurrent
// requests coalesce into batched MatMuls, identical in-flight requests
// single-flight, and the shared prediction cache answers repeats — the
// monitoring-dashboard workload of the paper's Table I templates, where
// many sessions keep asking about overlapping keyframes.
//
// BENCH_batch.json gates on concurrency-8 sched throughput >= 2x the
// direct baseline (self-gated on NumCPU >= 4, same policy as servebench:
// below that, concurrency time-slices and the ratio is meaningless).
//
//	schedbench -dur 1s
//	schedbench -dur 1s -pool 64 -levels 1,8,32,64 -json > BENCH_batch.json
//	schedbench -pool 0           # all-unique keyframes: pure coalescing
//	schedbench -window 2ms -max-batch 64   # knob sweep (see EXPERIMENTS.md)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

type levelResult struct {
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	RPS         float64 `json:"rps"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	// Scheduler-mode extras (zero in direct mode).
	Batches  int64   `json:"batches,omitempty"`
	AvgBatch float64 `json:"avg_batch,omitempty"`
	Dedup    int64   `json:"dedup_hits,omitempty"`
	Cached   int64   `json:"cache_hits,omitempty"`
}

func main() {
	dur := flag.Duration("dur", time.Second, "measurement window per (mode, concurrency) cell")
	levels := flag.String("levels", "1,8,32,64", "comma-separated worker concurrency levels")
	pool := flag.Int("pool", 64, "distinct keyframes in the request pool (0 = every request unique: pure coalescing, no dedup/cache)")
	side := flag.Int("side", 8, "keyframe side length (model input is side x side)")
	maxBatch := flag.Int("max-batch", 32, "scheduler MaxBatch knob")
	window := flag.Duration("window", 500*time.Microsecond, "scheduler batch-window knob")
	cacheCap := flag.Int("cache", 4096, "shared prediction-cache capacity (0 = off)")
	asJSON := flag.Bool("json", false, "emit BENCH_batch.json document on stdout")
	flag.Parse()

	entry := modelrepo.NewRepository(*side, 99).ForTask(modelrepo.TaskPatternRecog)
	art, err := nn.EncodeBytes(entry.Model)
	if err != nil {
		panic(err)
	}
	artHash := tensor.HashBytes(art)

	// The keyframe pool. pool=0 still pregenerates a large pool but the
	// workers walk it without repetition within the window, so dedup and
	// cache almost never fire and the bench isolates coalescing.
	unique := *pool <= 0
	n := *pool
	if unique {
		n = 1 << 16
	}
	blobs := make([][]byte, n)
	rng := rand.New(rand.NewSource(7))
	for i := range blobs {
		kf := tensor.New(3, *side, *side)
		d := kf.Data()
		for j := range d {
			d[j] = rng.Float64()
		}
		blobs[i] = iotdata.KeyframeBytes(kf)
	}

	var results []levelResult
	for _, lvl := range parseLevels(*levels) {
		for _, mode := range []string{"direct", "sched"} {
			r := runLevel(mode, lvl, *dur, entry.Model, art, artHash, blobs, unique,
				schedule.Config{MaxBatch: *maxBatch, Window: *window,
					Cache: cache.New[schedule.Key, int](*cacheCap), Metrics: obs.NewRegistry()})
			results = append(results, r)
			if !*asJSON {
				extra := ""
				if mode == "sched" {
					extra = fmt.Sprintf("  batches=%d avg=%.1f dedup=%d cached=%d",
						r.Batches, r.AvgBatch, r.Dedup, r.Cached)
				}
				fmt.Printf("%-6s c=%-3d %8d req %10.0f rps  p50=%.0fus p99=%.0fus%s\n",
					mode, lvl, r.Requests, r.RPS, r.P50Us, r.P99Us, extra)
			}
		}
	}

	rps := func(mode string, lvl int) float64 {
		for _, r := range results {
			if r.Mode == mode && r.Concurrency == lvl {
				return r.RPS
			}
		}
		return 0
	}
	speedup8 := 0.0
	if base := rps("direct", 8); base > 0 {
		speedup8 = rps("sched", 8) / base
	}
	ncpu := runtime.NumCPU()
	gated := ncpu < 4
	verdict := fmt.Sprintf("concurrency-8 scheduled throughput is %.2fx the no-scheduler baseline against the >=2x target", speedup8)
	if gated {
		verdict += fmt.Sprintf(" — NOT demonstrable here: only %d CPU(s) visible; re-run on a >=4-core machine (CI's scheduler job asserts the gate there).", ncpu)
	}

	if *asJSON {
		out := map[string]any{
			"description": "Cross-query inference scheduling: N concurrent workers each run a closed loop of (model, keyframe) inference requests over a pool of " + strconv.Itoa(n) + " distinct keyframes. direct = per-request forward pass (no scheduler, the strategy-local baseline); sched = all requests submitted to one shared scheduler (coalesced batching + single-flight dedup + shared prediction cache). rps counts completed requests.",
			"benchmark":   "go run ./cmd/schedbench -dur " + dur.String() + " -pool " + strconv.Itoa(*pool) + " -levels " + *levels + " -json",
			"date":        time.Now().Format("2006-01-02"),
			"numcpu":      ncpu,
			"gomaxprocs":  runtime.GOMAXPROCS(0),
			"knobs": map[string]any{
				"max_batch": *maxBatch,
				"window":    window.String(),
				"cache":     *cacheCap,
				"pool":      *pool,
			},
			"results": results,
			"summary": map[string]any{
				"speedup_c8_sched_vs_direct": round2(speedup8),
				"target_speedup_at_c8":       2.0,
				"gated_on_numcpu_ge_4":       gated,
				"verdict":                    verdict,
			},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			panic(err)
		}
		return
	}
	fmt.Println(verdict)
}

// runLevel drives `concurrency` closed-loop workers for the measurement
// window (after a short warmup) in one mode and aggregates counts and
// latencies. Each cell builds a fresh scheduler so batch/dedup counters
// are per-cell.
func runLevel(mode string, concurrency int, dur time.Duration, model *nn.Model,
	art []byte, artHash uint64, blobs [][]byte, unique bool, cfg schedule.Config) levelResult {
	var sched *schedule.Scheduler
	var be *schedule.Backend
	if mode == "sched" {
		if unique {
			cfg.Cache = nil
		}
		sched = schedule.New(cfg)
		be = schedule.NewNativeBackend(4)
	}

	type worker struct {
		n   int
		lat []time.Duration
	}
	workers := make([]worker, concurrency)
	var wg sync.WaitGroup
	start := make(chan struct{})
	stop := make(chan struct{})
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w*2654435761 + 1)
			next := func() uint64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return state
			}
			seq := w // unique-mode stride walk: worker w takes i*C+w
			measuring := false
			startCh := start
			for {
				select {
				case <-stop:
					return
				case <-startCh:
					measuring = true
					startCh = nil
				default:
				}
				var blob []byte
				if unique {
					blob = blobs[seq%len(blobs)]
					seq += concurrency
				} else {
					blob = blobs[next()%uint64(len(blobs))]
				}
				t0 := time.Now()
				if mode == "sched" {
					if _, err := sched.Infer(context.Background(), be, artHash, art, blob); err != nil {
						panic(err)
					}
				} else {
					in, err := iotdata.KeyframeTensor(blob)
					if err != nil {
						panic(err)
					}
					mc := *model // shallow per-call copy, as the UDF path does
					if _, _, err := mc.Predict(in); err != nil {
						panic(err)
					}
				}
				if measuring {
					workers[w].n++
					workers[w].lat = append(workers[w].lat, time.Since(t0))
				}
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond) // warmup
	t0 := time.Now()
	close(start)
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	total := 0
	var all []time.Duration
	for _, w := range workers {
		total += w.n
		all = append(all, w.lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	r := levelResult{
		Mode:        mode,
		Concurrency: concurrency,
		Requests:    total,
		RPS:         round2(float64(total) / elapsed.Seconds()),
		P50Us:       pctUs(all, 0.50),
		P99Us:       pctUs(all, 0.99),
	}
	if sched != nil {
		sched.Drain()
		st := sched.Stats()
		r.Batches = st.Batches
		if st.Batches > 0 {
			r.AvgBatch = round2(float64(st.Executed) / float64(st.Batches))
		}
		r.Dedup = st.DedupHits
		r.Cached = st.CacheHits
	}
	return r
}

func pctUs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return round2(float64(sorted[i].Nanoseconds()) / 1000.0)
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

func parseLevels(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			panic("bad -levels: " + s)
		}
		out = append(out, n)
	}
	return out
}
