// Command obsbench measures the cost of always-on self-observability on
// the four collaborative query types (for BENCH_sysobs.json). Each Type
// 1–4 template runs through the DB-UDF strategy twice per round:
//
//   - seed      — no metrics registry, no query history, no accounting
//     context (the pre-observability configuration)
//   - observed  — metrics + a 256-entry query-history ring armed on both
//     the engine and the strategy layer, with the sys.* catalog registered:
//     every statement pays the per-operator accounting adds and leaves a
//     QueryRecord behind
//
// The two configurations share one dataset and flip the History/Metrics
// pointers between runs, so the measured delta is exactly the accounting
// path. The run ends with two self-checks: a SQL query over sys.queries
// must see the recorded history, and the Prometheus text export must
// render a non-empty, well-formed snapshot.
//
//	obsbench -iters 7
//	obsbench -json > BENCH_sysobs.json   # after editing cpu/date fields
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/strategies"
)

func main() {
	iters := flag.Int("iters", 7, "timed iterations per variant")
	scale := flag.Int("scale", 2, "IoT dataset scale unit")
	asJSON := flag.Bool("json", false, "emit the BENCH_sysobs.json document on stdout")
	flag.Parse()

	ds, err := iotdata.Generate(iotdata.Config{Scale: *scale, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		fatalf("%v", err)
	}
	env := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := env.BindDefaults(repo, 20); err != nil {
		fatalf("%v", err)
	}

	// The observed configuration, built once; runs flip the pointers.
	metrics := obs.NewRegistry()
	history := obs.NewQueryHistory(256)
	db := ds.DB
	arm := func() {
		db.Metrics, db.History = metrics, history
		env.Metrics, env.History = metrics, history
	}
	disarm := func() {
		db.Metrics, db.History = nil, nil
		env.Metrics, env.History = nil, nil
	}
	arm()
	db.EnableSysCatalog()
	env.AttachObservability(db)
	disarm()

	types := []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4}
	queries := make(map[colquery.QueryType]*colquery.Query, len(types))
	for _, ty := range types {
		q, err := colquery.GenerateAnalyzed(ty, colquery.TemplateParams{Selectivity: 0.05})
		if err != nil {
			fatalf("generating Type%d: %v", ty, err)
		}
		queries[ty] = q
	}
	// Each timed sample executes the query `batch` times: a single DB-UDF
	// run is only a couple of milliseconds, which is inside this
	// container's scheduling-noise floor.
	const batch = 4
	run := func(ty colquery.QueryType) error {
		for i := 0; i < batch; i++ {
			if _, _, err := strategies.ExecuteWithFallback(context.Background(), env, &strategies.DBUDF{}, queries[ty]); err != nil {
				return err
			}
		}
		return nil
	}

	// Warmup: one pass of every (type, config) cell.
	for _, ty := range types {
		if err := run(ty); err != nil {
			fatalf("warmup Type%d: %v", ty, err)
		}
		arm()
		err := run(ty)
		disarm()
		if err != nil {
			fatalf("warmup Type%d observed: %v", ty, err)
		}
	}

	// Interleave rounds so machine drift spreads across both configs.
	seedNs := map[colquery.QueryType][]int64{}
	obsNs := map[colquery.QueryType][]int64{}
	for i := 0; i < *iters; i++ {
		for _, ty := range types {
			// A forced collection before each pair keeps GC debt from the
			// previous cell out of this cell's timing.
			runtime.GC()
			start := time.Now()
			if err := run(ty); err != nil {
				fatalf("Type%d seed: %v", ty, err)
			}
			seedNs[ty] = append(seedNs[ty], time.Since(start).Nanoseconds()/batch)

			// Collect again so the observed cell does not pay for the seed
			// cell's garbage — the bias would land entirely on one side.
			runtime.GC()
			arm()
			start = time.Now()
			err := run(ty)
			elapsed := time.Since(start).Nanoseconds() / batch
			disarm()
			if err != nil {
				fatalf("Type%d observed: %v", ty, err)
			}
			obsNs[ty] = append(obsNs[ty], elapsed)
		}
	}

	// Self-check 1: the recorded history is reachable through SQL.
	arm()
	defer disarm()
	sel, err := db.Query(`SELECT count(*) c FROM sys.queries WHERE wall_ms >= 0`)
	if err != nil {
		fatalf("sys.queries self-check: %v", err)
	}
	if sel.Cols[0].Get(0).I == 0 {
		fatalf("sys.queries self-check: history empty after benchmark")
	}
	// Self-check 2: the Prometheus export renders and the registry's names
	// are well formed.
	if err := metrics.Check(); err != nil {
		fatalf("registry self-check: %v", err)
	}
	var prom bytes.Buffer
	if err := export.WritePrometheus(&prom, metrics); err != nil {
		fatalf("prometheus export: %v", err)
	}
	if !strings.Contains(prom.String(), "# TYPE") {
		fatalf("prometheus export empty: %q", prom.String())
	}

	results := map[string]any{}
	summary := map[string]any{"budget_pct": 2.0}
	worst := -100.0
	var parts []string
	for _, ty := range types {
		name := fmt.Sprintf("type%d", ty)
		pct := round2(overheadPct(seedNs[ty], obsNs[ty]))
		results[name+"_seed"] = seedNs[ty]
		results[name+"_observed"] = obsNs[ty]
		summary[name+"_overhead_pct"] = pct
		if pct > worst {
			worst = pct
		}
		parts = append(parts, fmt.Sprintf("Type%d %+.2f%%", ty, pct))
		if !*asJSON {
			fmt.Printf("type%d  seed %-12s observed %-12s (%+.2f%%)\n", ty,
				time.Duration(mean(seedNs[ty])), time.Duration(mean(obsNs[ty])), pct)
		}
	}
	within := "within"
	if worst > 2.0 {
		within = "OVER"
	}
	verdict := fmt.Sprintf(
		"always-on accounting (metrics + history ring + sys catalog) costs %s on the Type 1-4 collaborative queries via DB-UDF; worst case %+.2f%%, %s the 2%% budget; sys.queries SQL and Prometheus export self-checks passed",
		strings.Join(parts, ", "), worst, within)
	summary["worst_overhead_pct"] = round2(worst)
	summary["verdict"] = verdict

	doc := map[string]any{
		"description":       "Cost of always-on self-observability on the four collaborative query types, each executed through the DB-UDF strategy: seed (no registry, no history, no accounting context) vs observed (engine + strategy metrics, a 256-entry query-history ring, and the sys.* catalog armed). Identical dataset and queries; only the History/Metrics pointers differ. The run self-checks that sys.queries answers SQL over the recorded history and that the Prometheus text export renders.",
		"benchmark":         "go run ./cmd/obsbench -json",
		"cpu":               "Intel(R) Xeon(R) Processor @ 2.10GHz",
		"date":              time.Now().Format("2006-01-02"),
		"results_ns_per_op": results,
		"summary":           summary,
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Println(verdict)
}

// overheadPct estimates the observed-vs-seed overhead from paired samples:
// seed and observed run back to back within each round, so the per-round
// ratio cancels slow machine drift, and the median of the ratios shrugs
// off the occasional scheduling outlier that a mean-of-means amplifies on
// millisecond-scale queries.
func overheadPct(seed, observed []int64) float64 {
	n := len(seed)
	if len(observed) < n {
		n = len(observed)
	}
	if n == 0 {
		return 0
	}
	ratios := make([]float64, n)
	for i := 0; i < n; i++ {
		ratios[i] = float64(observed[i]) / float64(seed[i])
	}
	sort.Float64s(ratios)
	mid := ratios[n/2]
	if n%2 == 0 {
		mid = (ratios[n/2-1] + ratios[n/2]) / 2
	}
	return 100 * (mid - 1)
}

// mean is the trimmed mean used across the BENCH_*.json harnesses: drop
// one outlier from each end when there are enough samples.
func mean(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) > 4 {
		sorted = sorted[1 : len(sorted)-1]
	}
	var sum int64
	for _, x := range sorted {
		sum += x
	}
	return sum / int64(len(sorted))
}

func round2(x float64) float64 {
	if x < 0 {
		return -float64(int(-x*100+0.5)) / 100
	}
	return float64(int(x*100+0.5)) / 100
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obsbench: "+format+"\n", args...)
	os.Exit(1)
}
