// Command sqlserved runs the serving front end: one process hosting the
// embedded engine behind the HTTP/JSON API in internal/server, so many
// clients (sqlsh -connect, servebench, curl) share one database, one
// statement/plan cache, and one admission controller.
//
// Usage:
//
//	sqlserved -addr :7878                        # empty database
//	sqlserved -iot -scale 5 -models              # IoT dataset + model bindings
//	sqlserved -load snap.db -cache 256           # snapshot + stmt/plan cache
//	sqlserved -max-concurrent 8 -max-queue 64    # admission sizing
//
// SIGINT/SIGTERM triggers a graceful drain: stop admitting, reject the
// queue, give in-flight queries -drain-grace to finish, cancel stragglers
// through their lifecycle contexts, flush the slow log, exit. The /metrics
// and /debug/pprof endpoints are mounted on the same listener.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

func main() {
	var (
		addr  = flag.String("addr", ":7878", "listen address")
		iot   = flag.Bool("iot", false, "start with the synthetic IoT dataset")
		scale = flag.Int("scale", 2, "IoT dataset scale unit")
		side  = flag.Int("side", 8, "IoT keyframe resolution")
		load  = flag.String("load", "", "restore a snapshot file")
		model = flag.Bool("models", false, "bind the default nUDF models (enables /v1/colquery; needs -iot)")

		cacheN   = flag.Int("cache", 128, "statement/plan cache entries per LRU (0 = off)")
		parallel = flag.Int("parallel", 0, "executor worker degree (0 = NumCPU)")

		maxConc    = flag.Int("max-concurrent", 8, "global execution slots")
		maxQueue   = flag.Int("max-queue", 64, "admission queue depth before fail-fast rejection")
		tenantConc = flag.Int("tenant-concurrent", 0, "per-tenant in-flight cap (0 = max-concurrent)")
		memBudget  = flag.Int64("mem-budget", 0, "default per-tenant per-query byte budget (0 = DB knob only)")

		drainGrace  = flag.Duration("drain-grace", 5*time.Second, "drain: wait this long before cancelling in-flight queries")
		sessionIdle = flag.Duration("session-idle", 15*time.Minute, "evict sessions idle this long (0 = never)")
		slowLog     = flag.String("slowlog", "", "append slow-query JSON records to this file")
		slowThresh  = flag.Duration("slow-threshold", 100*time.Millisecond, "slow-query threshold")

		traceMax    = flag.Int("trace-max", 256, "retained traces in the tail-sampled store")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "retain every trace at least this slow (negative = off)")
		traceSample = flag.Int("trace-sample", 64, "retain 1 in N normal traces (1 = all, negative = none)")
	)
	flag.Parse()

	var db *sqldb.DB
	var ds *iotdata.Dataset
	switch {
	case *load != "":
		var err error
		db, err = sqldb.LoadFile(*load)
		if err != nil {
			fatalf("loading %s: %v", *load, err)
		}
		fmt.Printf("restored %d tables from %s\n", len(db.TableNames()), *load)
	case *iot:
		var err error
		ds, err = iotdata.Generate(iotdata.Config{Scale: *scale, KeyframeSide: *side, Seed: 42, PatternCount: 6})
		if err != nil {
			fatalf("generating dataset: %v", err)
		}
		db = ds.DB
		fmt.Printf("generated IoT dataset (scale %d)\n", *scale)
	default:
		db = sqldb.New()
	}

	db.Parallelism = *parallel
	if *cacheN > 0 {
		db.EnableCache(*cacheN)
	}
	if db.Metrics == nil {
		db.Metrics = obs.NewRegistry()
	}
	db.History = obs.NewQueryHistory(512)
	db.History.SetSlowThreshold(*slowThresh)
	db.Traces = obs.NewTraceStore(obs.TraceStoreConfig{
		MaxTraces:     *traceMax,
		SlowThreshold: *traceSlow,
		SampleEvery:   *traceSample,
		Metrics:       db.Metrics,
	})
	db.EnableSysCatalog()

	var flushSlow func()
	if *slowLog != "" {
		f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("opening slow log: %v", err)
		}
		bw := bufio.NewWriter(f)
		db.History.SetSlowLog(bw)
		flushSlow = func() {
			bw.Flush()
			f.Close()
		}
	}

	// The inference surface needs a dataset plus bound models; without
	// -models the server still serves plain SQL.
	var env *strategies.Context
	if *model {
		if ds == nil {
			fatalf("-models requires -iot (the bindings calibrate against the dataset)")
		}
		env = strategies.NewContext(ds)
		repo := modelrepo.NewRepository(8, 99)
		if err := env.BindDefaults(repo, 20); err != nil {
			fatalf("binding models: %v", err)
		}
		env.Metrics = db.Metrics
		env.History = db.History
		env.Traces = db.Traces
		env.Breaker = &strategies.Breaker{}
		env.AttachObservability(db)
		fmt.Printf("bound %d nUDF models\n", len(env.Bindings))
	}

	srv := server.New(db, env, server.Config{
		Admission: server.AdmissionConfig{
			MaxConcurrent:    *maxConc,
			MaxQueue:         *maxQueue,
			TenantConcurrent: *tenantConc,
		},
		TenantMemoryDefault: *memBudget,
		SessionIdleTimeout:  *sessionIdle,
		DrainGrace:          *drainGrace,
	})
	if flushSlow != nil {
		srv.OnDrain(flushSlow)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("draining...")
		srv.Drain()
		hs.Close()
		close(done)
	}()

	fmt.Printf("sqlserved listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	<-done
	fmt.Println("drained; bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlserved: "+format+"\n", args...)
	os.Exit(1)
}
