// Command doccheck is the CI documentation gate. It enforces three
// invariants and exits non-zero if any fails:
//
//  1. Every Go package under internal/ and cmd/ carries a package comment
//     (a doc comment on the package clause in at least one file).
//  2. Every relative link in the repository's top-level *.md files points
//     at a file or directory that exists.
//  3. Every internal/* package is mentioned in ARCHITECTURE.md by its
//     "internal/<path>" import-style name — the architecture document
//     must at least place each package in the layer map.
//
// Usage (from the repository root):
//
//	go run ./cmd/doccheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	bad := 0
	bad += checkPackageComments(".")
	bad += checkMarkdownLinks(".")
	bad += checkArchitectureCoverage(".")
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkPackageComments walks internal/ and cmd/ and reports packages
// whose files all lack a package doc comment.
func checkPackageComments(root string) int {
	bad := 0
	for _, top := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			entries, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			hasGo := false
			documented := false
			fset := token.NewFileSet()
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				hasGo = true
				f, err := parser.ParseFile(fset, filepath.Join(path, name), nil, parser.PackageClauseOnly|parser.ParseComments)
				if err != nil {
					return fmt.Errorf("parsing %s: %w", filepath.Join(path, name), err)
				}
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if hasGo && !documented {
				fmt.Fprintf(os.Stderr, "doccheck: package %s has no package comment\n", path)
				bad++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: walking %s: %v\n", top, err)
			bad++
		}
	}
	return bad
}

// checkArchitectureCoverage requires ARCHITECTURE.md to mention every
// internal/* package (any directory under internal/ with at least one
// non-test .go file) by its "internal/<path>" name. A package the
// architecture document does not even name is a package no reader can
// place in the system.
func checkArchitectureCoverage(root string) int {
	data, err := os.ReadFile(filepath.Join(root, "ARCHITECTURE.md"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	doc := string(data)
	bad := 0
	err = filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkg := filepath.ToSlash(rel)
		if !strings.Contains(doc, pkg) {
			fmt.Fprintf(os.Stderr, "doccheck: ARCHITECTURE.md never mentions %s\n", pkg)
			bad++
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: walking internal: %v\n", err)
		bad++
	}
	return bad
}

// mdLink matches inline markdown links; links starting with a scheme or
// an in-page anchor are skipped.
var mdLink = regexp.MustCompile(`\]\(([^)\s#]+)(?:#[^)\s]*)?\)`)

// checkMarkdownLinks verifies relative links in top-level markdown files.
func checkMarkdownLinks(root string) int {
	bad := 0
	entries, err := os.ReadDir(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		// SNIPPETS.md reproduces documentation from external repositories
		// verbatim; its links target files that only exist upstream.
		if e.Name() == "SNIPPETS.md" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(root, e.Name()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			bad++
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if _, err := os.Stat(filepath.Join(root, target)); err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %s links to missing %q\n", e.Name(), target)
				bad++
			}
		}
	}
	return bad
}
