// Command genfuzzcorpus regenerates the checked-in seed corpus for the
// sqldb parser fuzz target from the paper's collaborative-query templates
// (internal/colquery). The corpus lives in the fuzz cache location Go
// expects, so plain `go test` replays it and `go test -fuzz=FuzzParse`
// mutates from it:
//
//	go run ./cmd/genfuzzcorpus
//	git add internal/sqldb/testdata/fuzz/FuzzParse
//
// The generator lives here (not in a sqldb test) because colquery imports
// sqldb: generating the corpus from inside package sqldb would create an
// import cycle.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/colquery"
)

const corpusDir = "internal/sqldb/testdata/fuzz/FuzzParse"

func main() {
	var seeds []string
	// Every template type at a few selectivities, plus the device-table
	// variant of Type 3, covers all UDF placements (WHERE, SELECT, JOIN)
	// and both join shapes the paper's workload generator emits.
	for _, qt := range []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4} {
		for _, sel := range []float64{0.0005, 0.05, 0.5} {
			sql, err := colquery.Generate(qt, colquery.TemplateParams{Selectivity: sel})
			if err != nil {
				fatalf("generate type %v sel %v: %v", qt, sel, err)
			}
			seeds = append(seeds, sql)
		}
	}
	sql, err := colquery.Generate(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05, UseDeviceTable: true})
	if err != nil {
		fatalf("generate type 3 device-table variant: %v", err)
	}
	seeds = append(seeds, sql)

	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		fatalf("mkdir %s: %v", corpusDir, err)
	}
	for i, s := range seeds {
		name := filepath.Join(corpusDir, fmt.Sprintf("colquery-template-%02d", i))
		body := fmt.Sprintf("go test fuzz v1\nstring(%q)\n", s)
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			fatalf("write %s: %v", name, err)
		}
	}
	fmt.Printf("wrote %d corpus files to %s\n", len(seeds), corpusDir)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "genfuzzcorpus: "+format+"\n", args...)
	os.Exit(1)
}
