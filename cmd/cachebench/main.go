// Command cachebench measures the repeated-query workload used for
// BENCH_cache.json: each Table I template type is executed several times
// against the same dataset, once with all caches disabled and once with
// the plan/statement cache and inference memoization enabled. The cached
// column reports the steady-state iteration time (every repeat after the
// first, which warms the caches).
//
//	cachebench -scale 2 -repeats 4
//	cachebench -scale 2 -repeats 4 -strategy DB-UDF -json > BENCH_cache.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/strategies"
)

func main() {
	scale := flag.Int("scale", 2, "dataset scale factor")
	side := flag.Int("side", 8, "keyframe side length")
	repeats := flag.Int("repeats", 4, "times each query is re-issued")
	capacity := flag.Int("capacity", 4096, "cache capacity (entries per LRU)")
	sel := flag.Float64("selectivity", 0.05, "template predicate selectivity")
	strat := flag.String("strategy", "DB-UDF", "strategy to drive (DB-UDF, DB-PyTorch, DL2SQL, DL2SQL-OP)")
	asJSON := flag.Bool("json", false, "emit the BENCH_cache.json document on stdout")
	flag.Parse()

	types := []struct {
		name string
		typ  colquery.QueryType
	}{
		{"Type1", colquery.Type1},
		{"Type2", colquery.Type2},
		{"Type3", colquery.Type3},
		{"Type4", colquery.Type4},
	}

	var rows []map[string]any
	for _, tc := range types {
		q, err := colquery.GenerateAnalyzed(tc.typ, colquery.TemplateParams{Selectivity: *sel})
		if err != nil {
			fatalf("generating %s: %v", tc.name, err)
		}
		uncachedMean, _, _ := runWorkload(*scale, *side, *strat, q, *repeats, 0)
		cachedMean, firstMs, counters := runWorkload(*scale, *side, *strat, q, *repeats, *capacity)
		speedup := 0.0
		if cachedMean > 0 {
			speedup = uncachedMean / cachedMean
		}
		row := map[string]any{
			"type":           tc.name,
			"uncached_ms":    round2(uncachedMean),
			"cached_ms":      round2(cachedMean),
			"cached_warm_ms": round2(firstMs),
			"speedup":        round2(speedup),
		}
		for k, v := range counters {
			row[k] = v
		}
		rows = append(rows, row)
		if !*asJSON {
			fmt.Printf("%-6s uncached=%8.2fms cached=%8.2fms (warm-up %8.2fms) speedup=%.2fx\n",
				tc.name, uncachedMean, cachedMean, firstMs, speedup)
		}
	}

	if *asJSON {
		doc := map[string]any{
			"benchmark":   "repeated collaborative queries, per-iteration mean",
			"strategy":    *strat,
			"scale":       *scale,
			"side":        *side,
			"repeats":     *repeats,
			"capacity":    *capacity,
			"selectivity": *sel,
			"go":          runtime.Version(),
			"gomaxprocs":  runtime.GOMAXPROCS(0),
			"results":     rows,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("encoding: %v", err)
		}
	}
}

// runWorkload re-issues one query `repeats` times on a fresh dataset.
// capacity == 0 runs fully uncached; otherwise the statement/plan cache
// and inference memoization are enabled. Returns the steady-state mean
// (iterations after the first), the first-iteration time, and the cache
// counters after the run.
func runWorkload(scale, side int, strat string, q *colquery.Query, repeats, capacity int) (steadyMs, firstMs float64, counters map[string]any) {
	ds, err := iotdata.Generate(iotdata.Config{Scale: scale, KeyframeSide: side, Seed: 7, PatternCount: 6})
	if err != nil {
		fatalf("generating dataset: %v", err)
	}
	ctx := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(side, 99)
	if err := ctx.BindDefaults(repo, 20); err != nil {
		fatalf("binding models: %v", err)
	}
	if capacity > 0 {
		ds.DB.EnableCache(capacity)
		ctx.EnableInferCache(capacity)
	}
	s := pickStrategy(strat)
	var firstRows int
	var steady time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, _, err := s.Execute(context.Background(), ctx, q)
		if err != nil {
			fatalf("%s iteration %d: %v", s.Name(), i, err)
		}
		el := time.Since(start)
		if i == 0 {
			firstMs = ms(el)
			firstRows = res.NumRows()
		} else {
			steady += el
			if res.NumRows() != firstRows {
				fatalf("%s iteration %d: row count drifted (%d vs %d)", s.Name(), i, res.NumRows(), firstRows)
			}
		}
	}
	if repeats > 1 {
		steadyMs = ms(steady) / float64(repeats-1)
	} else {
		steadyMs = firstMs
	}
	counters = map[string]any{}
	if capacity > 0 {
		cs := ds.DB.CacheStats()
		counters["plan_hits"] = cs.Plan.Hits
		counters["plan_misses"] = cs.Plan.Misses
		counters["stmt_hits"] = cs.Stmt.Hits
		is := ctx.InferCacheStats()
		counters["infer_hits"] = is.Hits
		counters["infer_misses"] = is.Misses
		if ctx.SQLCache != nil {
			results, steps := ctx.SQLCache.Stats()
			counters["sql_result_hits"] = results.Hits
			counters["sql_step_hits"] = steps.Hits
		}
	}
	return steadyMs, firstMs, counters
}

func pickStrategy(name string) strategies.Strategy {
	for _, s := range strategies.All() {
		if s.Name() == name {
			return s
		}
	}
	fatalf("unknown strategy %q (want DB-UDF, DB-PyTorch, DL2SQL, or DL2SQL-OP)", name)
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100.0 }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cachebench: "+format+"\n", args...)
	os.Exit(1)
}
