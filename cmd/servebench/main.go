// Command servebench measures serving-layer throughput: an in-process
// sqlserved instance over a generated fact table, hammered by N concurrent
// client sessions each running the same filter+group-by query in a closed
// loop. It reports queries/second and latency percentiles per concurrency
// level, and the concurrency-8 vs concurrency-1 speedup that BENCH_server.json
// gates on (>=3x on >=4-core hardware; self-gated below that, same policy
// as cmd/parbench).
//
//	servebench -rows 50000 -dur 2s
//	servebench -rows 50000 -dur 2s -levels 1,8,32 -json > BENCH_server.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sqldb"
)

const benchQuery = `SELECT grp, count(*) AS c, avg(v) AS m FROM pt WHERE v > 10 GROUP BY grp ORDER BY grp`

type levelResult struct {
	Concurrency int     `json:"concurrency"`
	Queries     int     `json:"queries"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

func main() {
	rows := flag.Int("rows", 50000, "fact table rows")
	dur := flag.Duration("dur", 2*time.Second, "measurement window per concurrency level")
	levels := flag.String("levels", "1,8,32", "comma-separated client concurrency levels")
	maxConcurrent := flag.Int("max-concurrent", 64, "server admission MaxConcurrent (kept above the client fan-out so admission is not the bottleneck)")
	parallel := flag.Int("parallel", 1, "per-query executor parallelism (1 = serial per query; inter-query parallelism is what this bench scales)")
	asJSON := flag.Bool("json", false, "emit BENCH_server.json document on stdout")
	flag.Parse()

	db := sqldb.New()
	db.Metrics = obs.NewRegistry()
	db.Parallelism = *parallel
	db.EnableCache(128)
	db.EnableSysCatalog()
	if _, err := db.Exec(`CREATE TABLE pt (id Int64, grp Int64, v Float64)`); err != nil {
		panic(err)
	}
	pt := db.GetTable("pt")
	state := uint64(12345)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < *rows; i++ {
		if err := pt.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)),
			sqldb.Int(int64(next() % 37)),
			sqldb.Float(float64(next()%10000) / 100.0),
		}); err != nil {
			panic(err)
		}
	}

	srv := server.New(db, nil, server.Config{
		Admission: server.AdmissionConfig{MaxConcurrent: *maxConcurrent, MaxQueue: 4096},
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Drain()

	var results []levelResult
	for _, lvl := range parseLevels(*levels) {
		r := runLevel(hs, lvl, *dur)
		results = append(results, r)
		if !*asJSON {
			fmt.Printf("concurrency %-3d  %6d queries  %8.1f qps  p50=%.2fms p99=%.2fms\n",
				r.Concurrency, r.Queries, r.QPS, r.P50Ms, r.P99Ms)
		}
	}

	byLevel := map[int]levelResult{}
	for _, r := range results {
		byLevel[r.Concurrency] = r
	}
	speedup8 := 0.0
	if b, ok := byLevel[1]; ok && b.QPS > 0 {
		if c8, ok := byLevel[8]; ok {
			speedup8 = c8.QPS / b.QPS
		}
	}
	ncpu := runtime.NumCPU()
	gated := ncpu < 4
	verdict := fmt.Sprintf("concurrency-8 throughput is %.2fx concurrency-1 against the >=3x target", speedup8)
	if gated {
		verdict += fmt.Sprintf(" — NOT demonstrable here: only %d CPU(s) visible, so concurrent sessions time-slice instead of running in parallel; the ratio then measures serving overhead (near 1x is the healthy outcome). Re-run on a >=4-core machine for the real number; CI's server job asserts the gate there.", ncpu)
	}

	if *asJSON {
		out := map[string]any{
			"description": "Serving-layer throughput: one in-process sqlserved over a " + strconv.Itoa(*rows) + "-row fact table; N concurrent client sessions each run the filter+group-by benchQuery in a closed loop through the full HTTP/JSON + admission + session path. qps counts completed round trips.",
			"benchmark":   "go run ./cmd/servebench -rows " + strconv.Itoa(*rows) + " -dur " + dur.String() + " -levels " + *levels + " -json",
			"query":       benchQuery,
			"date":        time.Now().Format("2006-01-02"),
			"numcpu":      ncpu,
			"gomaxprocs":  runtime.GOMAXPROCS(0),
			"results":     results,
			"summary": map[string]any{
				"speedup_c8_vs_c1":     round2(speedup8),
				"target_speedup_at_c8": 3.0,
				"gated_on_numcpu_ge_4": gated,
				"verdict":              verdict,
			},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			panic(err)
		}
		return
	}
	fmt.Println(verdict)
}

// runLevel drives `concurrency` closed-loop clients for the measurement
// window (after a short warmup) and aggregates their counts + latencies.
func runLevel(hs *httptest.Server, concurrency int, dur time.Duration) levelResult {
	type worker struct {
		n   int
		lat []time.Duration
	}
	ctx := context.Background()
	workers := make([]worker, concurrency)
	clients := make([]*server.Client, concurrency)
	for i := range clients {
		cli := server.Dial(hs.URL).WithHTTPClient(hs.Client())
		if err := cli.Connect(ctx, fmt.Sprintf("bench-%d", i%4)); err != nil {
			panic(err)
		}
		clients[i] = cli
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	stop := make(chan struct{})
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := clients[w]
			// warmup until the start signal, then measure until stop.
			measuring := false
			startCh := start // local copy: nil'd after the first receive
			for {
				select {
				case <-stop:
					return
				case <-startCh:
					measuring = true
					startCh = nil // nil channel never fires again
				default:
				}
				t0 := time.Now()
				if _, err := cli.Query(ctx, benchQuery); err != nil {
					panic(fmt.Sprintf("worker %d: %v", w, err))
				}
				if measuring {
					workers[w].n++
					workers[w].lat = append(workers[w].lat, time.Since(t0))
				}
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond) // warmup
	t0 := time.Now()
	close(start)
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)
	for _, cli := range clients {
		cli.Close(ctx)
	}

	total := 0
	var all []time.Duration
	for _, w := range workers {
		total += w.n
		all = append(all, w.lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return levelResult{
		Concurrency: concurrency,
		Queries:     total,
		QPS:         round2(float64(total) / elapsed.Seconds()),
		P50Ms:       pctMs(all, 0.50),
		P99Ms:       pctMs(all, 0.99),
	}
}

func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return round2(float64(sorted[i].Microseconds()) / 1000.0)
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

func parseLevels(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			panic("bad -levels: " + s)
		}
		out = append(out, n)
	}
	return out
}
