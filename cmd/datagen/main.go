// Command datagen generates the synthetic Alibaba-IoT-style dataset and
// prints its shape, or runs ad-hoc SQL against it for inspection.
//
// Usage:
//
//	datagen -scale 5                       # print table sizes
//	datagen -sql "SELECT count(*) FROM fabric WHERE humidity > 80"
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/iotdata"
)

func main() {
	var (
		scale = flag.Int("scale", 2, "scale unit (video gets 100x)")
		side  = flag.Int("side", 8, "keyframe resolution")
		seed  = flag.Int64("seed", 42, "generation seed")
		sql   = flag.String("sql", "", "SQL to run against the generated dataset")
	)
	flag.Parse()

	ds, err := iotdata.Generate(iotdata.Config{Scale: *scale, KeyframeSide: *side, Seed: *seed, PatternCount: 6})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	names := ds.DB.TableNames()
	sort.Strings(names)
	fmt.Println("generated tables:")
	for _, n := range names {
		t := ds.DB.GetTable(n)
		cols := make([]string, len(t.Schema))
		for i, c := range t.Schema {
			cols[i] = fmt.Sprintf("%s %s", c.Name, c.Type)
		}
		fmt.Printf("  %-10s %8d rows  (%s)\n", n, t.NumRows(), strings.Join(cols, ", "))
	}
	if *sql == "" {
		return
	}
	res, err := ds.DB.Exec(*sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if res == nil {
		fmt.Println("ok")
		return
	}
	header := make([]string, len(res.Schema))
	for i, c := range res.Schema {
		header[i] = c.Name
	}
	fmt.Println(strings.Join(header, " | "))
	for i := 0; i < res.NumRows() && i < 50; i++ {
		cells := make([]string, len(res.Cols))
		for j, c := range res.Cols {
			cells[j] = c.Get(i).String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if res.NumRows() > 50 {
		fmt.Printf("... (%d more rows)\n", res.NumRows()-50)
	}
}
