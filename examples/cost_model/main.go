// Cost model: Section IV-A in action. For a stack of convolutions the
// example prints the customized cost model's per-layer cardinalities and
// costs (Eqs. 3–8), the default DBMS estimate for the same pipeline, the
// measured actual SQL execution time, and the normalization ratio r that
// converts cost units to seconds.
//
//	go run ./examples/cost_model
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/costmodel"
	"repro/internal/dl2sql"
	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

func main() {
	model := nn.NewModel("costdemo", []int{3, 16, 16}, nil)
	model.Add(
		nn.NewConv2D("conv1", 3, 8, 3, 1, 1, 1),
		nn.NewConv2D("conv2", 8, 8, 3, 1, 1, 2),
		nn.NewConv2D("conv3", 8, 8, 3, 1, 1, 3),
	)

	// Per-layer geometry via the paper's formulas.
	fmt.Println("customized cost model (Eqs. 3-8):")
	d := costmodel.ConvDims{HIn: 16, WIn: 16, NIn: 3, NOut: 8, K: 3, Stride: 1, Pad: 1}
	h, w := d.OutDims()
	fmt.Printf("  conv1: out %dx%d  k_in=%.0f  T_in=%.0f  S_J=%.4f  T_out=%.0f  C_join=%.0f  C_out=%.0f\n",
		h, w, d.KIn(), d.TIn(), d.JoinSelectivity(), d.TOut(), d.JoinCost(), d.TotalCost())

	custom, err := costmodel.EstimateModel(model)
	if err != nil {
		log.Fatal(err)
	}
	def, err := costmodel.DefaultEstimateModel(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-layer estimates (cost units):")
	fmt.Printf("  %-8s %14s %14s\n", "layer", "customized", "default")
	for i := range custom.PerLayer {
		fmt.Printf("  %-8s %14.0f %14.0f\n",
			custom.PerLayer[i].Name, custom.PerLayer[i].Cost, def.PerLayer[i].Cost)
	}
	fmt.Printf("  %-8s %14.0f %14.0f   (default/customized = %.1fx)\n",
		"total", custom.Total, def.Total, def.Total/custom.Total)

	// Normalize to seconds and compare against the real SQL execution.
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	r, err := costmodel.NormalizationRatio(db)
	if err != nil {
		log.Fatal(err)
	}
	tr := dl2sql.NewTranslator(db, "cm")
	sm, err := tr.StoreModel(model)
	if err != nil {
		log.Fatal(err)
	}
	in := tensor.New(3, 16, 16)
	for i := range in.Data() {
		in.Data()[i] = float64(i%7) / 7
	}
	start := time.Now()
	if _, _, err := tr.Infer(sm, in); err != nil {
		log.Fatal(err)
	}
	actual := time.Since(start).Seconds()

	fmt.Printf("\nnormalization ratio r = %.3e s/row\n", r)
	fmt.Printf("customized estimate: %.4fs\n", costmodel.ToSeconds(custom.Total, r))
	fmt.Printf("default estimate:    %.4fs\n", costmodel.ToSeconds(def.Total, r))
	fmt.Printf("actual SQL time:     %.4fs\n", actual)
	fmt.Println("\nthe customized model tracks the actual within a small factor;")
	fmt.Println("the default estimate compounds its error across layers (Fig. 12).")
}
