// Batch inference: the paper executes nUDFs "in a batch manner (a batch of
// feature maps are fed to the model together)". This example contrasts
// per-sample SQL inference with the batched SampleID-keyed pipeline: the
// batch runs each neural operator as ONE SQL statement for all samples,
// amortizing per-statement overhead, and returns identical predictions.
//
//	go run ./examples/batch_inference
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dl2sql"
	"repro/internal/modelrepo"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

func main() {
	const batchSize = 8
	model := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 5)

	inputs := make([]*tensor.Tensor, batchSize)
	for i := range inputs {
		in := tensor.New(3, 8, 8)
		for j := range in.Data() {
			in.Data()[j] = float64((i*31+j*7)%17) / 17
		}
		inputs[i] = in
	}

	// Per-sample pipeline.
	db1 := sqldb.New()
	db1.Profile = sqldb.NewProfile()
	tr1 := dl2sql.NewTranslator(db1, "per")
	sm1, err := tr1.StoreModel(model)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	perResults := make([]int, batchSize)
	for i, in := range inputs {
		idx, _, err := tr1.Infer(sm1, in)
		if err != nil {
			log.Fatal(err)
		}
		perResults[i] = idx
	}
	perTime := time.Since(start)

	// Batched pipeline.
	db2 := sqldb.New()
	db2.Profile = sqldb.NewProfile()
	tr2 := dl2sql.NewTranslator(db2, "bat")
	sm2, err := tr2.StoreModel(model)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	batResults, err := tr2.InferBatch(sm2, inputs)
	if err != nil {
		log.Fatal(err)
	}
	batTime := time.Since(start)

	fmt.Printf("batch of %d keyframes through %q:\n\n", batchSize, model.ModelName)
	fmt.Printf("%-12s %8s %14s\n", "mode", "SQL stmts", "wall time")
	fmt.Printf("%-12s %8d %14s\n", "per-sample", len(tr1.Steps), perTime.Round(time.Microsecond))
	fmt.Printf("%-12s %8d %14s\n", "batched", len(tr2.Steps), batTime.Round(time.Microsecond))

	for i := range inputs {
		if perResults[i] != batResults[i] {
			log.Fatalf("sample %d disagrees: %d vs %d", i, perResults[i], batResults[i])
		}
	}
	fmt.Printf("\npredictions identical across modes: %v\n", batResults)
	fmt.Printf("statement amortization: %.1fx fewer statements, %.2fx faster\n",
		float64(len(tr1.Steps))/float64(len(tr2.Steps)),
		float64(perTime)/float64(batTime))
}
