// Pattern recognition: a Type 4 collaborative query — the hardest class in
// Table I — where the nUDF output participates in a join condition
// (F.patternID != nUDF_recog(V.keyframe)). The example shows the paper's
// hint rule 3 in action: with hints the engine plans a symmetric hash join
// for the nUDF join, and the query plan is printed for both configurations.
//
//	go run ./examples/pattern_recognition
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

func main() {
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 21, PatternCount: 6})
	if err != nil {
		log.Fatal(err)
	}
	ctx := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 21)
	if err := ctx.BindDefaults(repo, 30); err != nil {
		log.Fatal(err)
	}

	sql, err := colquery.Generate(colquery.Type4, colquery.TemplateParams{Selectivity: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	q, err := colquery.Analyze(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query (%s):\n  %s\n\n", q.Type, sql)

	// Hint rule 3: when the nUDF appears in a join condition, the planner is
	// told to use the symmetric hash join. Demonstrate on a reduced join
	// where the nUDF output is an equi-key.
	demo := `SELECT F.patternID FROM fabric F, video V WHERE nUDF_recog(V.keyframe) = F.patternID`
	hintsOn := &sqldb.QueryHints{SymmetricJoin: true}

	// Register a stand-in UDF so the plan compiles (the real strategies
	// register the bound models themselves).
	ctx.Dataset.DB.RegisterUDF(&sqldb.ScalarUDF{
		Name: "nudf_recog", Arity: 1,
		Fn:   func(args []sqldb.Datum) (sqldb.Datum, error) { return sqldb.Int(0), nil },
		Cost: 1e6,
	})
	planOff, err := ctx.Dataset.DB.PlanSelect(demo, nil)
	if err != nil {
		log.Fatal(err)
	}
	planOn, err := ctx.Dataset.DB.PlanSelect(demo, hintsOn)
	if err != nil {
		log.Fatal(err)
	}
	ctx.Dataset.DB.UnregisterUDF("nudf_recog")
	fmt.Println("plan without hints:")
	fmt.Println(sqldb.Explain(planOff))
	fmt.Println("plan with hint rule 3 (symmetric hash join):")
	fmt.Println(sqldb.Explain(planOn))

	// Execute the Type 4 query under both DL2SQL configurations.
	for _, s := range []strategies.Strategy{
		&strategies.DL2SQL{Optimized: false},
		&strategies.DL2SQL{Optimized: true},
	} {
		res, bd, err := s.Execute(context.Background(), ctx, q)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		fmt.Printf("%-10s rows=%-4d total=%.4fs (loading %.4f, inference %.4f, relational %.4f)\n",
			s.Name(), res.NumRows(), bd.Total(), bd.Loading, bd.Inference, bd.Relational)
	}
}
