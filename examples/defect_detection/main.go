// Defect detection: the paper's motivating scenario. A printing-fault query
// (Table I, Type 3) joins fabric sensor data with video keyframes and keeps
// transactions whose keyframes the defect-detection model classifies as
// clean despite risky humidity/temperature conditions. The example runs the
// same collaborative query under all four strategies and prints the
// loading / inference / relational breakdown of each.
//
//	go run ./examples/defect_detection
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/strategies"
)

func main() {
	// Synthetic IoT dataset: video/fabric/client/order/device at the
	// paper's 100:10:1:10:1 ratio.
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 11, PatternCount: 6})
	if err != nil {
		log.Fatal(err)
	}
	ctx := strategies.NewContext(ds)
	repo := modelrepo.NewRepository(8, 11)
	if err := ctx.BindDefaults(repo, 30); err != nil {
		log.Fatal(err)
	}

	// The printing-fault query from the paper's introduction (with the
	// transID projection qualified).
	sql := `SELECT patternID, F.transID AS transID
		FROM fabric F, video V
		WHERE F.humidity > 80 and F.temperature > 30
		and F.printdate > '2021-01-01' and F.printdate < '2021-01-31'
		and F.transID = V.transID
		and V.date > '2021-01-01' and V.date < '2021-01-31'
		and nUDF_detect(V.keyframe) = FALSE`
	q, err := colquery.Analyze(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaborative query classified as %s (%s)\n\n", q.Type, q.Type.Difficulty())

	for _, s := range strategies.All() {
		res, bd, err := s.Execute(context.Background(), ctx, q)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		fmt.Printf("%-12s  rows=%-4d loading=%.4fs inference=%.4fs relational=%.4fs total=%.4fs\n",
			s.Name(), res.NumRows(), bd.Loading, bd.Inference, bd.Relational, bd.Total())
	}

	fmt.Println("\nAll four strategies return the same rows; DL2SQL-OP prunes")
	fmt.Println("inference to the tuples surviving the sensor predicates (hint rule 1).")
}
