// Quickstart: build a small CNN, compile it to relational tables with the
// DL2SQL translator, and run one inference entirely as SQL — then check the
// answer against the native inference engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/dl2sql"
	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

func main() {
	// 1. An embedded, in-memory columnar database (the ClickHouse stand-in).
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()

	// 2. A small CNN: Conv → BN → ReLU → global average pool → FC → softmax.
	model := nn.NewModel("quickstart", []int{1, 8, 8}, []string{"ok", "defect"})
	model.Add(
		nn.NewConv2D("conv1", 1, 4, 3, 1, 1, 7),
		nn.NewBatchNorm("bn1", 4),
		&nn.ReLU{LayerName: "relu1"},
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 4, 2, 8),
		&nn.Softmax{LayerName: "softmax"},
	)
	if _, err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d parameters, %d FLOPs/inference\n",
		model.ModelName, model.ParamCount(), model.FLOPs())

	// 3. Compile the model into relational tables (kernel, bias, metadata,
	// kernel-mapping tables — the paper's Algorithm 1/2 artifacts).
	tr := dl2sql.NewTranslator(db, "qs")
	sm, err := tr.StoreModel(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored as %d relational tables, %d KB\n",
		len(sm.TableNames()), sm.StorageBytes(db)/1024)

	// 4. An input image.
	input := tensor.New(1, 8, 8)
	for i := range input.Data() {
		input.Data()[i] = float64(i%9) / 9
	}

	// 5. Inference as SQL.
	classIdx, prob, err := tr.Infer(sm, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL inference:    class=%q p=%.4f\n", model.Classes[classIdx], prob)

	// 6. The same inference on the native engine — bit-identical.
	nIdx, nProb, err := model.Predict(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native inference: class=%q p=%.4f\n", model.Classes[nIdx], nProb)
	if nIdx != classIdx {
		log.Fatal("SQL and native disagree!")
	}

	// 7. Peek at the generated pipeline steps.
	fmt.Println("\nSQL pipeline steps:")
	for _, step := range tr.Steps {
		fmt.Printf("  %-16s %6d rows  %s\n", step.Label, step.Rows, step.Time)
	}
}
