// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation as testing.B targets. Each benchmark prints its table
// once (on the first iteration) and reports the wall time of regenerating
// the experiment; run them all with
//
//	go test -bench=. -benchmem
//
// or a specific experiment with e.g. -bench=BenchmarkTable5Selectivity.
// The cmd/expgen binary runs the same experiments at a larger scale.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/colquery"
	"repro/internal/hwprofile"
	"repro/internal/strategies"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

// benchSuite lazily builds one shared suite for all benchmarks.
func benchSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := bench.DefaultConfig()
		cfg.Scale = 1
		cfg.QueriesPerType = 1
		cfg.CalibrationSamples = 16
		cfg.Depths = []int{5, 10, 15, 20}
		suite, suiteErr = bench.NewSuite(cfg)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// printOnce renders the table on the first benchmark iteration only.
func printOnce(b *testing.B, i int, t *bench.Table) {
	if i == 0 {
		fmt.Println(t.Render())
	}
}

func BenchmarkTable4Storage(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Table4StorageOverheads()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkFig8Overall(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig8Overall()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkFig9Blocks(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig9CNNBlocks()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkFig10RelOps(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig10RelOps()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkFig11PreJoin(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig11PreJoin()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkTable5Selectivity(b *testing.B) {
	s := benchSuite(b)
	sels := []float64{0.0201, 0.1, 0.2, 0.4}
	for i := 0; i < b.N; i++ {
		t, err := s.Table5Selectivity(sels)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkTable6Depth(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Table6Depth([]int{5, 10})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkFig12CostModel(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig12CostModel()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkFig13PerOp(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig13PerOp()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkFig14Hints(b *testing.B) {
	s := benchSuite(b)
	sels := []float64{0.02, 0.2}
	for i := 0; i < b.N; i++ {
		t, err := s.Fig14Hints(sels)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkQueryTypes(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.TableITypes()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

// Per-strategy microbenchmarks: one Type 3 query under each configuration
// on the edge profile.
func benchStrategy(b *testing.B, strat strategies.Strategy) {
	b.Helper()
	s := benchSuite(b)
	s.Ctx.Profile = hwprofile.EdgeCPU
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := strat.Execute(context.Background(), s.Ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyDL2SQL(b *testing.B)   { benchStrategy(b, &strategies.DL2SQL{}) }
func BenchmarkStrategyDL2SQLOP(b *testing.B) { benchStrategy(b, &strategies.DL2SQL{Optimized: true}) }
func BenchmarkStrategyDBUDF(b *testing.B)    { benchStrategy(b, &strategies.DBUDF{}) }
func BenchmarkStrategyDBPyTorch(b *testing.B) {
	benchStrategy(b, &strategies.DBPyTorch{})
}

func BenchmarkAblationBatching(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.AblationBatching()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkAblationSymmetricJoin(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.AblationSymmetricJoin()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func BenchmarkAblationPredicateOrdering(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.AblationPredicateOrdering()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}
